// Package vpn assembles the full system of Figs. 2 and 11: two private
// enclaves, each behind a gateway that combines an IPsec dataplane, an
// IKE daemon with QKD extensions, and one end of a quantum key
// distribution link. User traffic entering gateway A in the clear
// leaves gateway B in the clear, protected in between by keys that
// exist only because single photons made it down the fiber.
//
//	enclave A -- gwA ==[internet: ESP tunnel]== gwB -- enclave B
//	              \\                             //
//	               ==[quantum channel + QKD protocols]==
//
// A gateway pair carries N tunnels (Config.Tunnels), each with its own
// selector prefixes, cipher suite and lifetime; Send is safe for
// concurrent use, rollovers are per-tunnel and deduplicated, and a
// soft-expiring SA triggers a background rekey before its hard stop.
package vpn

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"qkd/internal/channel"
	"qkd/internal/core"
	"qkd/internal/flow"
	"qkd/internal/ike"
	"qkd/internal/ipsec"
	"qkd/internal/keypool"
	"qkd/internal/kms"
	"qkd/internal/photonics"
	"qkd/internal/qnet"
	"qkd/internal/rng"
)

// TunnelSpec declares one protected tunnel between the two enclaves:
// traffic PrefixA -> PrefixB is protected A-side outbound, the reverse
// direction B-side outbound. Suite and Life are taken verbatim (the
// zero values — AES-128-CTR, unbounded lifetime — are themselves valid
// choices, so explicit specs never inherit the Config-wide Suite/Life);
// a zero OTPBits inherits Config.OTPBits.
type TunnelSpec struct {
	// Name labels the tunnel; policy names derive from it. Empty is
	// allowed for a single default tunnel ("a-to-b"/"b-to-a" policies).
	Name string
	// PrefixA/PrefixB are the enclave selectors behind gateway A and B.
	PrefixA ipsec.Prefix
	PrefixB ipsec.Prefix
	// Suite protects this tunnel's traffic.
	Suite ipsec.CipherSuite
	// Life bounds each negotiated SA.
	Life ipsec.Lifetime
	// OTPBits is the per-direction pad withdrawal for SuiteOTP tunnels.
	OTPBits int
}

// Config assembles a network.
type Config struct {
	// Photonics configures the quantum link (DefaultParams if zero).
	Photonics photonics.Params
	// QKD configures the protocol engines.
	QKD core.Config
	// IKE configures both daemons.
	IKE ike.Config
	// Suite protects enclave traffic (tunnels may override per-spec).
	Suite ipsec.CipherSuite
	// Life bounds each negotiated SA.
	Life ipsec.Lifetime
	// OTPBits is the per-direction pad withdrawal for SuiteOTP tunnels.
	OTPBits int
	// Tunnels declares the gateway pair's tunnels. Empty means the
	// classic single HostA/HostB tunnel over 10.1/16 <-> 10.2/16.
	Tunnels []TunnelSpec
	// FrameSlots is the pulse count per QKD frame.
	FrameSlots int
	// Seed drives all simulation randomness.
	Seed uint64
	// NoQKD skips building the photon-level QKD session entirely; key
	// material arrives via ChargeSynthetic instead. The fabric-scale
	// experiments use this: simulating single photons for 100k tunnels
	// is neither feasible nor the point.
	NoQKD bool
	// RekeyWorkers sizes the background rekeyer's worker pool (default
	// 2). Workers drain the deduplicated rekey queue in batches, so a
	// fabric-wide expiry storm coalesces into a few batched IKE
	// exchanges instead of a thundering herd of negotiations.
	RekeyWorkers int
	// RekeyBatch caps tunnels per batched IKE exchange (default 256).
	RekeyBatch int
	// RekeyBackoff is the base delay before a failed background rekey
	// is retried (default 5ms). Retries back off exponentially with
	// jitter up to RekeyBackoffMax (default 500ms) and stop after
	// RekeyRetryBudget attempts (default 8), leaving the tunnel to the
	// next traffic-driven signal — so a starved reservoir produces a
	// trickle of spaced retries, never a hot requeue loop.
	RekeyBackoff     time.Duration
	RekeyBackoffMax  time.Duration
	RekeyRetryBudget int
	// KDS routes all key delivery through a per-site kms.Service: the
	// distillation engines deposit into the KDS, and the IKE daemons
	// withdraw Qblocks and OTP pads as (stream, sequence) ticket claims
	// under the QoS scheduler instead of lockstep pool withdrawals.
	KDS bool
	// KDSConfig tunes the services when KDS is set (zero value = kms
	// defaults with a fully synchronized ledger).
	KDSConfig kms.Config
	// FlowControl, with KDS, attaches a flow credit controller to the
	// background rekeyer: batch bursts are paced by the controller's
	// AIMD window (ticked per batch against kms pressure marks) instead
	// of always draining rekeyBatch tunnels, and a marked controller
	// jumps retry backoff straight to the cap — the closed-loop
	// alternative to discovering overload through ErrOverload sheds.
	FlowControl bool
	// FlowConfig tunes the rekey controller when FlowControl is set.
	FlowConfig flow.Config
	// QNet, when set alongside KDS, supplements the direct link with
	// end-to-end key striped across the unified QKD network: PumpQNet
	// transports key over QNetStripes vertex-disjoint paths and
	// deposits it into both sites' services through mirrored "qnet"
	// custody feeds. The two gateways must be registered in the QNet
	// topology as QNetSrc and QNetDst.
	QNet             *qnet.Network
	QNetSrc, QNetDst string
	// QNetStripes is the disjoint-path share count k (default 2: no
	// single relay of the wider network ever holds a delivered key).
	QNetStripes int
	// IKELogA / IKELogB, when non-nil, receive each daemon's
	// racoon-style log lines (Fig. 12).
	IKELogA io.Writer
	IKELogB io.Writer
}

// Site is one end of the VPN: gateway plus its control-plane pieces.
type Site struct {
	GW  *ipsec.Gateway
	IKE *ike.Daemon
	// Pool is the site's distilled-key supply: a raw reservoir, or the
	// KDS-backed view when Config.KDS is set.
	Pool keypool.Pool
	// KDS is the site's key delivery service (nil unless Config.KDS).
	KDS *kms.Service
}

// tunnel is one assembled protected path: its two directional policies
// plus the rollover bookkeeping that keeps concurrent rekeys single.
type tunnel struct {
	spec  TunnelSpec
	polAB *ipsec.Policy
	polBA *ipsec.Policy

	rekeyMu      sync.Mutex
	gen          atomic.Uint64 // completed negotiations
	rekeyPending atomic.Bool   // queued on the background rekeyer
	// fails counts consecutive failed background rekeys; it drives the
	// exponential backoff and resets on the first success.
	fails atomic.Uint32
}

// rekeyReq is one queued background rekey: the tunnel plus the
// generation the signaling dataplane path observed.
type rekeyReq struct {
	t   *tunnel
	gen uint64
}

// defaults for the coalescing rekeyer.
const (
	defaultRekeyWorkers    = 2
	defaultRekeyBatch      = 256
	defaultRekeyBackoff    = 5 * time.Millisecond
	defaultRekeyBackoffMax = 500 * time.Millisecond
	defaultRekeyBudget     = 8
)

// Network is the assembled two-site system.
type Network struct {
	A, B    *Site
	Session *core.Session

	qnet             *qnet.Network
	qnetSrc, qnetDst string
	qnetK            int
	qnetFeedA        *kms.Feed
	qnetFeedB        *kms.Feed

	tunnels  []*tunnel
	byPolicy map[string]*tunnel
	// flowSPD indexes every tunnel's two directional policies in
	// declaration order, so matchTunnel is a tuple-space lookup with the
	// linear scan's first-match semantics instead of an O(tunnels) walk.
	flowSPD *ipsec.SPD

	// Background rekeyer: gateway soft-expiry (and missing-SA) signals
	// funnel into a deduplicated queue (a tunnel appears at most once,
	// via rekeyPending) drained by a small worker pool in batches of
	// rekeyBatch. Each request carries the tunnel generation observed
	// when the signal fired, so a rollover that already happened in the
	// meantime voids it. The batching is what tames a fabric-wide
	// expiry storm: ten thousand soft-expiry signals collapse into a
	// few dozen batched IKE exchanges, each with one QoS ledger ticket
	// per key stream.
	rekeyQMu     sync.Mutex
	rekeyQ       []rekeyReq
	rekeyCond    *sync.Cond
	rekeyClosed  bool
	rekeyWorkers int
	rekeyBatch   int
	rekeyWG      sync.WaitGroup

	// Failed background rekeys retry on a jittered exponential backoff
	// with a per-tunnel budget; the jitter source is shared and so
	// mutex-guarded.
	rekeyBackoff    time.Duration
	rekeyBackoffMax time.Duration
	rekeyBudget     int
	jitterMu        sync.Mutex
	jitter          *rng.SplitMix64

	// rekeyCtl, when FlowControl is configured, is the ClassRekey credit
	// controller pacing batch bursts and backoff (nil otherwise).
	rekeyCtl *flow.Controller
	// authCtl is the LEDBAT-style background controller for auth-pad
	// replenishment: its yielded window biases the distillation batch
	// split (core.AuthBias) and registers ClassAuth demand.
	authCtl *flow.Background

	// ikeMu guards the Site.IKE daemon pointers against RestartSite
	// swapping them mid-use: negotiation paths hold it shared for the
	// whole exchange, so a restart's exclusive acquisition doubles as
	// the drain barrier for in-flight batches. Lock order: a tunnel's
	// rekeyMu (if held) is always taken before ikeMu.
	ikeMu            sync.RWMutex
	ikeCfgA, ikeCfgB ike.Config
	ikeLogA, ikeLogB io.Writer
	qbA, otpA        *kms.Stream
	qbB, otpB        *kms.Stream

	// seed feeds ChargeSynthetic's deterministic key generator.
	seed      uint64
	synthSeed atomic.Uint64

	// EveTap, when set, sees every tunnel packet crossing the simulated
	// internet and may drop or rewrite it. It is called from every
	// concurrent Send, so the tap must be safe for parallel use.
	EveTap func(p *ipsec.Packet) (*ipsec.Packet, bool)

	delivered      atomic.Uint64
	dropped        atomic.Uint64
	rekeyRetries   atomic.Uint64
	rekeyAbandoned atomic.Uint64
	restarts       atomic.Uint64
}

// vpnPSK authenticates Phase 1 on both daemons (and their rebuilds
// after a gateway restart).
var vpnPSK = []byte("darpa-quantum-network-psk")

// Addresses used throughout (mirroring the paper's 192.1.99.x testbed).
var (
	GatewayA = ipsec.MustAddr("192.1.99.34")
	GatewayB = ipsec.MustAddr("192.1.99.35")
	HostA    = ipsec.MustAddr("10.1.0.5")
	HostB    = ipsec.MustAddr("10.2.0.9")
)

// policyNames derives the two directional policy names for a spec.
func (s TunnelSpec) policyNames() (ab, ba string) {
	if s.Name == "" {
		return "a-to-b", "b-to-a"
	}
	return s.Name + "/a-to-b", s.Name + "/b-to-a"
}

// New assembles the network. Call Establish to bring the tunnels up.
func New(cfg Config) (*Network, error) {
	if cfg.Photonics.PulseRateHz == 0 {
		cfg.Photonics = photonics.DefaultParams()
	}
	if cfg.OTPBits == 0 {
		cfg.OTPBits = 64 * 1024
	}
	specs := cfg.Tunnels
	if len(specs) == 0 {
		// The classic single tunnel is the one place the Config-wide
		// Suite/Life apply (explicit specs carry their own verbatim:
		// the zero suite IS AES, so inheritance would be ambiguous).
		specs = []TunnelSpec{{
			PrefixA: ipsec.MustPrefix("10.1.0.0/16"),
			PrefixB: ipsec.MustPrefix("10.2.0.0/16"),
			Suite:   cfg.Suite,
			Life:    cfg.Life,
		}}
	}

	// With a KDS per site, distillation deposits into the service and
	// quick mode draws (stream, sequence) blocks: "ike/qblocks" for
	// conventional rekeys at ClassRekey, "ike/otp" for pad withdrawal
	// at ClassOTP. Both sites register mirrored streams.
	var kdsA, kdsB *kms.Service
	var qbA, otpA, qbB, otpB *kms.Stream
	poolA, poolB := keypool.Pool(keypool.New()), keypool.Pool(keypool.New())
	if cfg.KDS {
		// kms defaults an unset StreamFraction to 1, so every distilled
		// bit is addressable by ticket unless the caller says otherwise.
		kdsA, kdsB = kms.New(cfg.KDSConfig), kms.New(cfg.KDSConfig)
		var err error
		mk := func(svc *kms.Service) (qb, otp *kms.Stream) {
			if err != nil {
				return nil, nil
			}
			if qb, err = svc.NewStream("ike/qblocks", ike.QblockBits, kms.ClassRekey); err != nil {
				return nil, nil
			}
			otp, err = svc.NewStream("ike/otp", 1024, kms.ClassOTP)
			return qb, otp
		}
		qbA, otpA = mk(kdsA)
		qbB, otpB = mk(kdsB)
		if err != nil {
			return nil, fmt.Errorf("vpn: building KDS streams: %w", err)
		}
		poolA, poolB = kdsA.PoolView(kms.ClassRekey), kdsB.PoolView(kms.ClassRekey)
	}
	// A fabric-scale network skips the photon-level session: the pools
	// are charged synthetically instead (ChargeSynthetic).
	var session *core.Session
	if !cfg.NoQKD {
		session = core.NewSessionWithPools(cfg.Photonics, cfg.QKD, cfg.FrameSlots, cfg.Seed, poolA, poolB)
	}

	if cfg.RekeyWorkers <= 0 {
		cfg.RekeyWorkers = defaultRekeyWorkers
	}
	if cfg.RekeyBatch <= 0 {
		cfg.RekeyBatch = defaultRekeyBatch
	}
	if cfg.RekeyBackoff <= 0 {
		cfg.RekeyBackoff = defaultRekeyBackoff
	}
	if cfg.RekeyBackoffMax <= 0 {
		cfg.RekeyBackoffMax = defaultRekeyBackoffMax
	}
	if cfg.RekeyRetryBudget <= 0 {
		cfg.RekeyRetryBudget = defaultRekeyBudget
	}
	n := &Network{
		Session:         session,
		byPolicy:        make(map[string]*tunnel),
		rekeyWorkers:    cfg.RekeyWorkers,
		rekeyBatch:      cfg.RekeyBatch,
		rekeyBackoff:    cfg.RekeyBackoff,
		rekeyBackoffMax: cfg.RekeyBackoffMax,
		rekeyBudget:     cfg.RekeyRetryBudget,
		jitter:          rng.NewSplitMix64(cfg.Seed ^ 0x717A3D),
		seed:            cfg.Seed,
	}
	n.rekeyCond = sync.NewCond(&n.rekeyQMu)
	if cfg.KDS && cfg.FlowControl {
		// The rekey window starts at one batch worth of Qblocks and caps
		// at a full rekeyBatch unless the caller says otherwise.
		fc := cfg.FlowConfig
		if fc.MinWindow <= 0 {
			fc.MinWindow = ike.QblockBits
		}
		if fc.MaxWindow <= 0 {
			fc.MaxWindow = cfg.RekeyBatch * ike.QblockBits
		}
		n.rekeyCtl = flow.NewController("vpn/rekey", kms.ClassRekey, kdsA, fc)
		n.authCtl = flow.NewBackground("vpn/auth", kdsA, flow.BackgroundConfig{})
		if session != nil {
			// The background window, ticked once per distilled batch,
			// caps the per-direction auth-pad share: while foreground
			// demand is active the window collapses and whole batches
			// reach the starved classes; when it clears, replenishment
			// ramps back. The AuthBias latch keeps the mirrored engines'
			// splits identical.
			session.SetAuthBias(core.NewAuthBias(func(base int) int {
				if w := n.authCtl.Tick() / 2; w < base {
					return w
				}
				return base
			}))
		}
	}
	var spdA, spdB []*ipsec.Policy
	seen := make(map[string]bool)
	for _, spec := range specs {
		if spec.OTPBits == 0 {
			spec.OTPBits = cfg.OTPBits
		}
		nameAB, nameBA := spec.policyNames()
		if seen[nameAB] {
			return nil, fmt.Errorf("vpn: duplicate tunnel name %q", spec.Name)
		}
		seen[nameAB] = true
		t := &tunnel{
			spec: spec,
			polAB: &ipsec.Policy{
				Name: nameAB, Action: ipsec.Protect, Suite: spec.Suite,
				PeerGW: GatewayB, Life: spec.Life, OTPBits: spec.OTPBits,
				Sel: ipsec.Selector{Src: spec.PrefixA, Dst: spec.PrefixB},
			},
			polBA: &ipsec.Policy{
				Name: nameBA, Action: ipsec.Protect, Suite: spec.Suite,
				PeerGW: GatewayA, Life: spec.Life, OTPBits: spec.OTPBits,
				Sel: ipsec.Selector{Src: spec.PrefixB, Dst: spec.PrefixA},
			},
		}
		n.tunnels = append(n.tunnels, t)
		n.byPolicy[nameAB], n.byPolicy[nameBA] = t, t
		spdA = append(spdA, t.polAB, t.polBA)
		spdB = append(spdB, t.polBA, t.polAB)
	}
	n.flowSPD = ipsec.NewSPD(spdA...)
	gwA := ipsec.NewGateway(GatewayA, ipsec.NewSPD(spdA...))
	gwB := ipsec.NewGateway(GatewayB, ipsec.NewSPD(spdB...))

	ikeConnA, ikeConnB := channel.MemPair(64)
	cfgI := cfg.IKE
	cfgI.Seed = cfg.Seed ^ 0x1CE
	dA := ike.NewDaemon(ike.Initiator, ikeConnA, gwA, poolA, vpnPSK, cfgI, cfg.IKELogA)
	cfgR := cfg.IKE
	cfgR.Seed = cfg.Seed ^ 0x2CE
	dB := ike.NewDaemon(ike.Responder, ikeConnB, gwB, poolB, vpnPSK, cfgR, cfg.IKELogB)
	if cfg.KDS {
		dA.SetKeyStreams(qbA, otpA)
		dB.SetKeyStreams(qbB, otpB)
	}
	// RestartSite rebuilds daemons from these.
	n.ikeCfgA, n.ikeCfgB = cfgI, cfgR
	n.ikeLogA, n.ikeLogB = cfg.IKELogA, cfg.IKELogB
	n.qbA, n.otpA, n.qbB, n.otpB = qbA, otpA, qbB, otpB

	n.A = &Site{GW: gwA, IKE: dA, Pool: poolA, KDS: kdsA}
	n.B = &Site{GW: gwB, IKE: dB, Pool: poolB, KDS: kdsB}
	if cfg.KDS && cfg.QNet != nil {
		if cfg.QNetStripes <= 0 {
			cfg.QNetStripes = 2
		}
		fa, err := kdsA.AttachSource("qnet")
		if err != nil {
			return nil, fmt.Errorf("vpn: attaching qnet feed: %w", err)
		}
		fb, err := kdsB.AttachSource("qnet")
		if err != nil {
			return nil, fmt.Errorf("vpn: attaching qnet feed: %w", err)
		}
		n.qnet = cfg.QNet
		n.qnetSrc, n.qnetDst = cfg.QNetSrc, cfg.QNetDst
		n.qnetK = cfg.QNetStripes
		n.qnetFeedA, n.qnetFeedB = fa, fb
	}
	return n, nil
}

// Tunnels returns the tunnel names in declaration order.
func (n *Network) Tunnels() []string {
	out := make([]string, len(n.tunnels))
	for i, t := range n.tunnels {
		out[i] = t.spec.Name
	}
	return out
}

// PumpQNet transports nbits of fresh end-to-end key across the unified
// QKD network as Config.QNetStripes XOR shares over vertex-disjoint
// paths and deposits it into both sites' key delivery services through
// the mirrored "qnet" custody feeds — a second key source beside the
// direct link, with no relay of the wider network ever holding the key.
// Like any multi-source deposit, call it at quiescent points (between
// distillation pumps): mirrored services must observe the same merged
// ingest order.
func (n *Network) PumpQNet(nbits int) error {
	if n.qnet == nil {
		return errors.New("vpn: no QNet configured (set Config.KDS and Config.QNet)")
	}
	tr, err := n.qnet.NewTransport(n.qnetSrc, n.qnetDst, nbits, n.qnetK, qnet.TransportOpts{
		FeedA: n.qnetFeedA, FeedB: n.qnetFeedB,
	})
	if err != nil {
		return fmt.Errorf("vpn: qnet transport: %w", err)
	}
	if err := tr.Run(64); err != nil {
		return fmt.Errorf("vpn: qnet transport: %w", err)
	}
	if _, err := tr.Finish(); err != nil {
		return fmt.Errorf("vpn: qnet transport: %w", err)
	}
	return nil
}

// PumpQNetDemand is the closed-loop PumpQNet: the transport is sized
// by the windowed demand flow controllers have registered with site A's
// delivery service (clamped by the qnet defaults) instead of a
// caller-fixed nbits — replenishment tracks what consumers actually
// announced they need. Both mirrored feeds receive identical bits, so
// the ledger contract is untouched.
func (n *Network) PumpQNetDemand() error {
	if n.qnet == nil {
		return errors.New("vpn: no QNet configured (set Config.KDS and Config.QNet)")
	}
	tr, err := n.qnet.NewDemandTransport(n.qnetSrc, n.qnetDst, n.A.KDS, n.qnetK, qnet.TransportOpts{
		FeedA: n.qnetFeedA, FeedB: n.qnetFeedB,
	})
	if err != nil {
		return fmt.Errorf("vpn: qnet transport: %w", err)
	}
	if err := tr.Run(64); err != nil {
		return fmt.Errorf("vpn: qnet transport: %w", err)
	}
	if _, err := tr.Finish(); err != nil {
		return fmt.Errorf("vpn: qnet transport: %w", err)
	}
	return nil
}

// RekeyController exposes the rekeyer's flow controller (nil unless
// Config.FlowControl) so harnesses can read its window and mark state.
func (n *Network) RekeyController() *flow.Controller { return n.rekeyCtl }

// AuthController exposes the background auth-replenishment controller
// (nil unless Config.FlowControl).
func (n *Network) AuthController() *flow.Background { return n.authCtl }

// DistillKeys pumps QKD frames until both reservoirs hold at least
// bits, within maxFrames.
func (n *Network) DistillKeys(bits, maxFrames int) error {
	if n.Session == nil {
		return errors.New("vpn: NoQKD network has no distillation session (use ChargeSynthetic)")
	}
	return n.Session.RunUntilDistilled(bits, maxFrames)
}

// ChargeSynthetic deposits `bits` of identical deterministic key into
// both sites' supplies, standing in for distillation on NoQKD
// (fabric-scale) networks: the mirrored-reservoir invariant the QKD
// layer normally provides — same bits, same order, both ends — is
// preserved, just without simulating the photons that justify it.
func (n *Network) ChargeSynthetic(bits int) {
	seq := n.synthSeed.Add(1)
	material := rng.NewSplitMix64(n.seed ^ 0xC4A26E*seq).Bits(bits)
	n.A.Pool.Deposit(material.Clone())
	n.B.Pool.Deposit(material)
}

// Establish starts both IKE daemons (Phase 1), negotiates every
// tunnel's first SAs, and wires the gateways' soft-rekey signals into
// the background rekeyer. The reservoirs must hold key material (run
// DistillKeys first, or let the negotiation block on late arrival).
func (n *Network) Establish() error {
	errCh := make(chan error, 1)
	go func() { errCh <- n.B.IKE.Start() }()
	if err := n.A.IKE.Start(); err != nil {
		return fmt.Errorf("vpn: initiator IKE: %w", err)
	}
	if err := <-errCh; err != nil {
		return fmt.Errorf("vpn: responder IKE: %w", err)
	}
	if err := n.Renegotiate(); err != nil {
		return err
	}
	// Soft-expiry (and missing-SA) signals from either gateway request a
	// deduplicated background rekey. Only wired after establishment so
	// stray signals never race Phase 1.
	for i := 0; i < n.rekeyWorkers; i++ {
		n.rekeyWG.Add(1)
		go n.rekeyWorker()
	}
	n.A.GW.OnMissingSA = n.requestRekey
	n.B.GW.OnMissingSA = n.requestRekey
	return nil
}

// requestRekey queues a tunnel for background renegotiation; duplicate
// signals while one is queued or running collapse into it. The request
// carries the generation observed *now*, at signal time: if any other
// path rolls the tunnel over before the rekeyer dequeues it, the stale
// request is void and burns no key. Called from the dataplane
// (ProcessOutbound), so it never blocks.
func (n *Network) requestRekey(pol *ipsec.Policy) {
	t := n.byPolicy[pol.Name]
	if t == nil {
		return
	}
	if !t.rekeyPending.CompareAndSwap(false, true) {
		return
	}
	req := rekeyReq{t, t.gen.Load()}
	n.rekeyQMu.Lock()
	if n.rekeyClosed {
		n.rekeyQMu.Unlock()
		t.rekeyPending.Store(false)
		return
	}
	n.rekeyQ = append(n.rekeyQ, req)
	n.rekeyQMu.Unlock()
	n.rekeyCond.Signal()
}

// rekeyWorker drains the rekey queue in batches. The pending dedup
// guarantees a tunnel sits in at most one worker's batch at a time, so
// workers hold disjoint sets of tunnel rekey locks and cannot deadlock
// against each other (or against single-tunnel rekey paths, which only
// ever hold one).
func (n *Network) rekeyWorker() {
	defer n.rekeyWG.Done()
	for {
		n.rekeyQMu.Lock()
		for len(n.rekeyQ) == 0 && !n.rekeyClosed {
			n.rekeyCond.Wait()
		}
		if n.rekeyClosed {
			n.rekeyQMu.Unlock()
			return
		}
		take := len(n.rekeyQ)
		if take > n.rekeyBatch {
			take = n.rekeyBatch
		}
		// Flow control paces the burst: the controller's credit window
		// (ticked here, once per batch, against the KDS pressure signal)
		// converts to tunnels at one Qblock each. Under pressure the
		// window decays multiplicatively and a storm drains in small
		// spaced bites the scheduler can absorb; unmarked, it grows back
		// toward full batches.
		if n.rekeyCtl != nil {
			if cap := n.rekeyCtl.Tick() / ike.QblockBits; cap >= 1 && take > cap {
				take = cap
			}
		}
		batch := make([]rekeyReq, take)
		copy(batch, n.rekeyQ)
		n.rekeyQ = n.rekeyQ[:copy(n.rekeyQ, n.rekeyQ[take:])]
		n.rekeyQMu.Unlock()

		ts := make([]*tunnel, len(batch))
		gens := make([]uint64, len(batch))
		for i, r := range batch {
			ts[i], gens[i] = r.t, r.gen
		}
		// A failed tunnel (starved reservoir, shed ticket, restarting
		// peer) re-queues itself after a jittered exponential backoff
		// instead of bouncing hot between the dataplane signal and the
		// queue; its rekeyPending flag stays held through the wait so
		// fresh signals keep collapsing into the scheduled retry.
		errs := n.negotiateTunnels(ts, gens)
		for i, r := range batch {
			if errs[i] != nil {
				// A shed ticket is hard congestion feedback: cut the
				// window now instead of waiting for the next tick's
				// pressure sample.
				if n.rekeyCtl != nil && errors.Is(errs[i], kms.ErrOverload) {
					n.rekeyCtl.OnShed()
				}
				n.retryLater(r.t)
				continue
			}
			r.t.fails.Store(0)
			r.t.rekeyPending.Store(false)
		}
	}
}

// retryLater schedules a failed tunnel's next rekey attempt, or gives
// the tunnel up to the next traffic-driven signal once its retry
// budget is spent.
func (n *Network) retryLater(t *tunnel) {
	fails := t.fails.Add(1)
	if int(fails) > n.rekeyBudget {
		t.fails.Store(0)
		t.rekeyPending.Store(false)
		n.rekeyAbandoned.Add(1)
		return
	}
	n.rekeyRetries.Add(1)
	time.AfterFunc(n.backoffDelay(fails), func() { n.requeue(t) })
}

// backoffDelay is the jittered exponential backoff for a tunnel's
// attempt number fails (1-based): base<<(fails-1) capped at the max,
// then uniformly jittered over [d/2, d) so a batch of simultaneous
// failures doesn't re-converge into a synchronized retry storm. When
// the site's key delivery service is already signalling pressure, the
// delay jumps straight to the cap — retrying sooner would only feed
// the overload the KDS is trying to shed.
func (n *Network) backoffDelay(fails uint32) time.Duration {
	d := n.rekeyBackoff << (fails - 1)
	if d <= 0 || d > n.rekeyBackoffMax {
		d = n.rekeyBackoffMax
	}
	if n.rekeyCtl != nil && n.rekeyCtl.Marked() {
		// The flow controller marks well before pressure reaches the
		// shed point — back off at the early signal, not the cliff.
		d = n.rekeyBackoffMax
	} else if s := n.A.KDS; s != nil && s.Pressure() >= 1 {
		d = n.rekeyBackoffMax
	}
	n.jitterMu.Lock()
	j := n.jitter.Float64()
	n.jitterMu.Unlock()
	return d/2 + time.Duration(j*float64(d/2))
}

// requeue re-enqueues a tunnel whose rekeyPending flag is still held by
// the backoff path (so it bypasses requestRekey's CAS), observing the
// generation current at fire time.
func (n *Network) requeue(t *tunnel) {
	req := rekeyReq{t, t.gen.Load()}
	n.rekeyQMu.Lock()
	if n.rekeyClosed {
		n.rekeyQMu.Unlock()
		t.rekeyPending.Store(false)
		return
	}
	n.rekeyQ = append(n.rekeyQ, req)
	n.rekeyQMu.Unlock()
	n.rekeyCond.Signal()
}

// negotiateTunnels rolls a set of distinct tunnels over in one batched
// IKE exchange. Each tunnel's rekey lock is held across the batch;
// tunnels whose generation moved past the observed one are skipped
// (the rollover already happened, no key to burn). Returns one error
// per tunnel, nil on success or skip.
func (n *Network) negotiateTunnels(ts []*tunnel, gens []uint64) []error {
	errs := make([]error, len(ts))
	items := make([]ike.BatchItem, 0, len(ts))
	idx := make([]int, 0, len(ts))
	for i, t := range ts {
		t.rekeyMu.Lock()
		if t.gen.Load() != gens[i] {
			t.rekeyMu.Unlock()
			ts[i] = nil // already rolled over; skip and drop the lock
			continue
		}
		items = append(items, ike.BatchItem{Policy: t.polAB, ReversePolicy: t.polBA.Name})
		idx = append(idx, i)
	}
	if len(items) == 0 {
		return errs
	}
	// Shared ikeMu spans the exchange: a concurrent RestartSite blocks
	// until this batch drains (failing fast once the old daemon stops).
	//lint:lockorder ikeMu is deliberately read-held across the blocking batch negotiation — it is the drain barrier RestartSite's exclusive acquisition waits on
	n.ikeMu.RLock()
	berrs, err := n.A.IKE.NegotiateBatch(items)
	n.ikeMu.RUnlock()
	for k, i := range idx {
		switch {
		case err != nil:
			errs[i] = err
		case berrs[k] != nil:
			errs[i] = berrs[k]
		default:
			ts[i].gen.Add(1)
		}
		ts[i].rekeyMu.Unlock()
	}
	return errs
}

// Renegotiate rolls every tunnel over to fresh SAs ("key rollover"),
// batched rekeyBatch tunnels per IKE exchange.
func (n *Network) Renegotiate() error {
	for lo := 0; lo < len(n.tunnels); lo += n.rekeyBatch {
		hi := lo + n.rekeyBatch
		if hi > len(n.tunnels) {
			hi = len(n.tunnels)
		}
		ts := make([]*tunnel, hi-lo)
		gens := make([]uint64, hi-lo)
		for i, t := range n.tunnels[lo:hi] {
			ts[i], gens[i] = t, t.gen.Load()
		}
		for i, err := range n.negotiateTunnels(ts, gens) {
			if err != nil {
				return fmt.Errorf("vpn: tunnel %q: %w", n.tunnels[lo+i].spec.Name, err)
			}
		}
	}
	return nil
}

// RenegotiateTunnel rolls one tunnel (by TunnelSpec.Name) over.
func (n *Network) RenegotiateTunnel(name string) error {
	for _, t := range n.tunnels {
		if t.spec.Name == name {
			return n.rekeyTunnelFrom(t, t.gen.Load())
		}
	}
	return fmt.Errorf("vpn: no tunnel named %q", name)
}

// rekeyTunnelFrom negotiates fresh SAs for one tunnel unless its
// generation has already moved past gen — the generation the caller
// observed when it decided a rekey was needed. Concurrent callers
// collapse: exactly one negotiation's key is burned per observed
// expiry, no matter how many flows (or the background rekeyer) noticed.
func (n *Network) rekeyTunnelFrom(t *tunnel, gen uint64) error {
	//lint:lockorder rekeyMu deliberately spans the whole negotiation so concurrent rekeys of one tunnel collapse to a single burned key
	t.rekeyMu.Lock()
	defer t.rekeyMu.Unlock()
	if t.gen.Load() != gen {
		return nil // a rollover since the caller looked installed fresh SAs
	}
	//lint:lockorder ikeMu is deliberately read-held across the blocking negotiation — it is the drain barrier RestartSite's exclusive acquisition waits on
	n.ikeMu.RLock()
	err := n.A.IKE.Negotiate(t.polAB, t.polBA.Name)
	n.ikeMu.RUnlock()
	if err != nil {
		return err
	}
	t.gen.Add(1)
	return nil
}

// Close tears the network down.
func (n *Network) Close() {
	n.rekeyQMu.Lock()
	n.rekeyClosed = true
	n.rekeyQMu.Unlock()
	n.rekeyCond.Broadcast()
	// Stop the daemons before waiting out the rekeyer: a background
	// negotiation in flight fails fast on the stopped daemon instead of
	// holding teardown for its timeout.
	n.ikeMu.RLock()
	dA, dB := n.A.IKE, n.B.IKE
	n.ikeMu.RUnlock()
	dA.Stop()
	dB.Stop()
	n.rekeyWG.Wait()
	if n.rekeyCtl != nil {
		n.rekeyCtl.Close()
	}
	if n.authCtl != nil {
		n.authCtl.Close()
	}
	if n.A.KDS != nil {
		n.A.KDS.Close()
	}
	if n.B.KDS != nil {
		n.B.KDS.Close()
	}
}

// Stats are the network's cumulative dataplane and robustness counters.
type Stats struct {
	// Delivered / Dropped count user packets through Send.
	Delivered uint64
	Dropped   uint64
	// RekeyRetries counts failed background rekeys re-queued on the
	// jittered backoff; RekeyAbandoned counts tunnels whose retry
	// budget ran out (left for the next traffic-driven signal).
	RekeyRetries   uint64
	RekeyAbandoned uint64
	// Restarts counts RestartSite crash-recoveries.
	Restarts uint64
}

// Stats reports the network's counters.
func (n *Network) Stats() Stats {
	return Stats{
		Delivered:      n.delivered.Load(),
		Dropped:        n.dropped.Load(),
		RekeyRetries:   n.rekeyRetries.Load(),
		RekeyAbandoned: n.rekeyAbandoned.Load(),
		Restarts:       n.restarts.Load(),
	}
}

// matchTunnel finds the tunnel and direction serving a flow via the
// selector-tuple index — one map probe per selector shape rather than
// a scan over every tunnel, which capped Send throughput near a
// thousand tunnels.
func (n *Network) matchTunnel(p *ipsec.Packet) (t *tunnel, aToB bool) {
	pol := n.flowSPD.Match(p)
	if pol == nil {
		return nil, false
	}
	t = n.byPolicy[pol.Name]
	if t == nil {
		return nil, false
	}
	return t, pol == t.polAB
}

// Send pushes one user packet from src enclave to dst enclave through
// its tunnel and returns the payload as received at the far side. Safe
// for concurrent use across (and within) tunnels.
func (n *Network) Send(src, dst ipsec.Addr, id uint32, payload []byte) ([]byte, error) {
	inner := &ipsec.Packet{Src: src, Dst: dst, Proto: ipsec.ProtoPing, ID: id, Payload: payload}
	out, in := n.A.GW, n.B.GW
	if _, aToB := n.matchTunnel(inner); !aToB {
		out, in = n.B.GW, n.A.GW
	}
	outer, err := out.ProcessOutbound(inner)
	if err != nil {
		n.dropped.Add(1)
		return nil, err
	}
	// Cross the simulated internet, where Eve may interfere.
	if n.EveTap != nil {
		var drop bool
		outer, drop = n.EveTap(outer)
		if drop {
			n.dropped.Add(1)
			return nil, errors.New("vpn: packet lost in transit")
		}
	}
	got, err := in.ProcessInbound(outer)
	if err != nil {
		n.dropped.Add(1)
		return nil, err
	}
	if got.Src != src || got.Dst != dst || got.ID != id {
		return nil, fmt.Errorf("vpn: decapsulated packet headers corrupted")
	}
	n.delivered.Add(1)
	return got.Payload, nil
}

// Ping sends A->B and expects delivery; a convenience for tests.
func (n *Network) Ping(id uint32) error {
	_, err := n.Send(HostA, HostB, id, []byte("ping"))
	return err
}

// SendWithRollover sends, and on SA expiry transparently renegotiates
// the flow's tunnel with fresh QKD key and retries once — the
// deployment behaviour where "every time the lifetime expires, a new
// security association must be negotiated and it will bring with it
// fresh key material." Concurrent rollovers of one tunnel collapse
// into a single negotiation.
func (n *Network) SendWithRollover(src, dst ipsec.Addr, id uint32, payload []byte) ([]byte, error) {
	// Observe the tunnel generation before sending: if the send fails on
	// an expired SA, that SA belonged to this generation, and the rekey
	// below is void if anyone else has already rolled past it.
	t, _ := n.matchTunnel(&ipsec.Packet{Src: src, Dst: dst, Proto: ipsec.ProtoPing})
	var gen uint64
	if t != nil {
		gen = t.gen.Load()
	}
	got, err := n.Send(src, dst, id, payload)
	if err == nil {
		return got, nil
	}
	// ErrUnknownSPI is retryable too: during a rollover the responder
	// installs its new outbound SA before the initiator's reply arrives,
	// so a concurrent B->A packet can be sealed under a SPI the far side
	// has not installed yet. rekeyTunnelFrom waits out the in-flight
	// negotiation (whose completion voids the generation), after which
	// the inbound SA exists and the retry lands.
	if t != nil && (errors.Is(err, ipsec.ErrNoSA) || errors.Is(err, ipsec.ErrExpired) ||
		errors.Is(err, ipsec.ErrPadExhaust) || errors.Is(err, ipsec.ErrUnknownSPI)) {
		if err := n.rekeyTunnelFrom(t, gen); err != nil {
			return nil, fmt.Errorf("vpn: rollover failed: %w", err)
		}
		return n.Send(src, dst, id, payload)
	}
	return nil, err
}

// KeyRaceResult summarizes a key consumption/production race (E8).
type KeyRaceResult struct {
	Delivered     uint64
	Rollovers     int
	RolloverFails int
	BitsDistilled uint64
	BitsConsumed  uint64
}

// RunKeyRace interleaves user traffic with QKD distillation for the
// given number of rounds: each round pumps qkdFrames frames of quantum
// transmission and then pushes packets user packets through the tunnel,
// rolling SAs over as they expire. It is the "race between the rate at
// which keying material is put into place and the rate at which it is
// consumed" of Section 2, in miniature.
func (n *Network) RunKeyRace(rounds, qkdFrames, packets, payloadBytes int) (KeyRaceResult, error) {
	var res KeyRaceResult
	if n.Session == nil {
		return res, errors.New("vpn: NoQKD network has no distillation session")
	}
	id := uint32(0)
	for r := 0; r < rounds; r++ {
		if err := n.Session.RunFrames(qkdFrames); err != nil {
			return res, fmt.Errorf("vpn: qkd pump: %w", err)
		}
		for p := 0; p < packets; p++ {
			id++
			_, err := n.Send(HostA, HostB, id, make([]byte, payloadBytes))
			if err == nil {
				res.Delivered++
				continue
			}
			if errors.Is(err, ipsec.ErrNoSA) || errors.Is(err, ipsec.ErrExpired) ||
				errors.Is(err, ipsec.ErrPadExhaust) {
				res.Rollovers++
				if nerr := n.Renegotiate(); nerr != nil {
					res.RolloverFails++
					continue // key starved; traffic drops this round
				}
				if _, err := n.Send(HostA, HostB, id, make([]byte, payloadBytes)); err == nil {
					res.Delivered++
				}
				continue
			}
			return res, err
		}
	}
	am := n.Session.Alice.Metrics()
	res.BitsDistilled = am.DistilledBits
	st := n.A.IKE.Stats()
	res.BitsConsumed = st.QbitsConsumed
	return res, nil
}

// WaitPool blocks until the named site's key supply holds bits or the
// timeout passes.
func WaitPool(pool keypool.Source, bits int, timeout time.Duration) error {
	return ike.WaitAvailable(pool, bits, timeout)
}
