package vpn

import (
	"fmt"
	"sync"

	"qkd/internal/ike"
	"qkd/internal/ipsec"
	"qkd/internal/kms"
)

// FabricConfig sizes a gateway fabric: Pairs independent gateway pairs
// (each its own Network — separate SPDs, SADs, IKE daemons, and key
// delivery services), TunnelsPerPair tunnels on each.
type FabricConfig struct {
	// Pairs is the number of gateway pairs (default 1).
	Pairs int
	// TunnelsPerPair is the tunnel count per pair (default 1024, max
	// 65536 — the fabric's /24 addressing plan per pair).
	TunnelsPerPair int
	// OTPEvery makes every k-th tunnel a one-time-pad tunnel (0 = all
	// conventional). The rest use AES-128-CTR.
	OTPEvery int
	// OTPBits is the per-direction pad size for OTP tunnels (default
	// 16384 bits).
	OTPBits int
	// Life bounds every tunnel's SAs — the storm lever: a byte budget
	// all tunnels chew through together synchronizes their expiry.
	Life ipsec.Lifetime
	// IKE configures all daemons.
	IKE ike.Config
	// RekeyWorkers / RekeyBatch tune each pair's coalescing rekeyer.
	RekeyWorkers int
	RekeyBatch   int
	// Seed drives deterministic key and nonce generation.
	Seed uint64
}

// Fabric is an O(100k)-tunnel deployment: many gateway pairs, each a
// NoQKD Network whose key arrives synthetically through its KDS. The
// paper's single testbed pair scales out by replication — gateway
// pairs share nothing, so the fabric's aggregate tunnel count is
// bounded by memory, not by contention on any global structure.
type Fabric struct {
	Nets []*Network
	cfg  FabricConfig
}

// fabricSpecs builds one pair's tunnel specs: tunnel t covers
// 10.x.y.0/24 <-> 11.x.y.0/24 with x:y the 16-bit tunnel index.
func fabricSpecs(cfg FabricConfig) []TunnelSpec {
	specs := make([]TunnelSpec, cfg.TunnelsPerPair)
	for t := range specs {
		suite := ipsec.SuiteAES128CTR
		if cfg.OTPEvery > 0 && t%cfg.OTPEvery == cfg.OTPEvery-1 {
			suite = ipsec.SuiteOTP
		}
		hi, lo := byte(t>>8), byte(t)
		specs[t] = TunnelSpec{
			Name:    fmt.Sprintf("ft%d", t),
			PrefixA: ipsec.Prefix{Addr: ipsec.Addr{10, hi, lo, 0}, Bits: 24},
			PrefixB: ipsec.Prefix{Addr: ipsec.Addr{11, hi, lo, 0}, Bits: 24},
			Suite:   suite,
			Life:    cfg.Life,
			OTPBits: cfg.OTPBits,
		}
	}
	return specs
}

// NewFabric assembles the fabric (no tunnels up yet; charge key with
// ChargeKey and call Establish).
func NewFabric(cfg FabricConfig) (*Fabric, error) {
	if cfg.Pairs <= 0 {
		cfg.Pairs = 1
	}
	if cfg.TunnelsPerPair <= 0 {
		cfg.TunnelsPerPair = 1024
	}
	if cfg.TunnelsPerPair > 1<<16 {
		return nil, fmt.Errorf("vpn: %d tunnels per pair exceeds the fabric addressing plan (%d)",
			cfg.TunnelsPerPair, 1<<16)
	}
	if cfg.OTPBits <= 0 {
		cfg.OTPBits = 16384
	}
	f := &Fabric{cfg: cfg}
	specs := fabricSpecs(cfg)
	for p := 0; p < cfg.Pairs; p++ {
		n, err := New(Config{
			NoQKD:        true,
			KDS:          true,
			KDSConfig:    kms.Config{},
			Tunnels:      specs,
			IKE:          cfg.IKE,
			OTPBits:      cfg.OTPBits,
			RekeyWorkers: cfg.RekeyWorkers,
			RekeyBatch:   cfg.RekeyBatch,
			Seed:         cfg.Seed ^ uint64(p+1)*0x5F4A,
		})
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("vpn: fabric pair %d: %w", p, err)
		}
		f.Nets = append(f.Nets, n)
	}
	return f, nil
}

// KeyBitsPerRollover returns the key demand of one fabric-wide
// rollover: every conventional tunnel burns its Qblocks, every OTP
// tunnel two pads rounded up to the delivery stream's block size.
func (f *Fabric) KeyBitsPerRollover() int {
	qblocks := f.cfg.IKE.Qblocks
	if qblocks == 0 {
		qblocks = 1
	}
	otpBlock := 1024 // the "ike/otp" stream's block size
	padBits := 2 * f.cfg.OTPBits
	padBits = (padBits + otpBlock - 1) / otpBlock * otpBlock
	total := 0
	for t := 0; t < f.cfg.TunnelsPerPair; t++ {
		if f.cfg.OTPEvery > 0 && t%f.cfg.OTPEvery == f.cfg.OTPEvery-1 {
			total += padBits
		} else {
			total += qblocks * ike.QblockBits
		}
	}
	return total
}

// ChargeKey synthesizes `bits` of key into every pair's mirrored
// delivery services.
func (f *Fabric) ChargeKey(bits int) {
	for _, n := range f.Nets {
		n.ChargeSynthetic(bits)
	}
}

// Establish brings every pair up concurrently; within a pair, tunnels
// come up in batched IKE exchanges.
func (f *Fabric) Establish() error {
	errs := make([]error, len(f.Nets))
	var wg sync.WaitGroup
	for i, n := range f.Nets {
		wg.Add(1)
		go func(i int, n *Network) {
			defer wg.Done()
			errs[i] = n.Establish()
		}(i, n)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("vpn: fabric pair %d: %w", i, err)
		}
	}
	return nil
}

// Tunnels returns the fabric's total tunnel count.
func (f *Fabric) Tunnels() int { return len(f.Nets) * f.cfg.TunnelsPerPair }

// Close tears every pair down.
func (f *Fabric) Close() {
	for _, n := range f.Nets {
		n.Close()
	}
}
