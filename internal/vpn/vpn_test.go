package vpn

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"qkd/internal/core"
	"qkd/internal/ipsec"
	"qkd/internal/photonics"
	"qkd/internal/qnet"
	"qkd/internal/relay"
)

// fastPhotonics is a lossless link so tests distill quickly.
func fastPhotonics() photonics.Params {
	p := photonics.DefaultParams()
	p.MeanPhotons = 0.1
	p.FiberKm = 0
	p.SystemLossDB = 0
	p.DetectorEff = 1.0
	p.DarkCountProb = 1e-5
	p.Visibility = 0.96
	return p
}

func fastConfig(suite ipsec.CipherSuite) Config {
	return Config{
		Photonics: fastPhotonics(),
		QKD:       core.Config{BatchBits: 2048},
		Suite:     suite,
		OTPBits:   8192,
		Seed:      42,
	}
}

func TestEndToEndVPN(t *testing.T) {
	n, err := New(fastConfig(ipsec.SuiteAES128CTR))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.DistillKeys(2048, 60); err != nil {
		t.Fatal(err)
	}
	if err := n.Establish(); err != nil {
		t.Fatal(err)
	}
	// Traffic both directions.
	got, err := n.Send(HostA, HostB, 1, []byte("hello bob"))
	if err != nil {
		t.Fatalf("A->B: %v", err)
	}
	if !bytes.Equal(got, []byte("hello bob")) {
		t.Fatalf("payload corrupted: %q", got)
	}
	got, err = n.Send(HostB, HostA, 2, []byte("hello alice"))
	if err != nil {
		t.Fatalf("B->A: %v", err)
	}
	if !bytes.Equal(got, []byte("hello alice")) {
		t.Fatalf("payload corrupted: %q", got)
	}
	if d, _ := n.Stats(); d != 2 {
		t.Errorf("delivered = %d", d)
	}
}

func TestVPNOverOTP(t *testing.T) {
	n, err := New(fastConfig(ipsec.SuiteOTP))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	// OTP needs 2x8192 bits plus margin.
	if err := n.DistillKeys(3*8192, 300); err != nil {
		t.Fatal(err)
	}
	if err := n.Establish(); err != nil {
		t.Fatal(err)
	}
	for i := uint32(1); i <= 20; i++ {
		if err := n.Ping(i); err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
	}
}

func TestTunnelHidesPlaintext(t *testing.T) {
	n, err := New(fastConfig(ipsec.SuiteAES128CTR))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.DistillKeys(2048, 60); err != nil {
		t.Fatal(err)
	}
	if err := n.Establish(); err != nil {
		t.Fatal(err)
	}
	secret := []byte("extremely secret enclave data")
	n.EveTap = func(p *ipsec.Packet) (*ipsec.Packet, bool) {
		if p.Proto != ipsec.ProtoESP {
			t.Errorf("non-ESP packet on the internet: proto %d", p.Proto)
		}
		if bytes.Contains(p.Payload, secret[:12]) {
			t.Error("plaintext visible on the wire")
		}
		return p, false
	}
	if _, err := n.Send(HostA, HostB, 1, secret); err != nil {
		t.Fatal(err)
	}
}

func TestEveTamperingDetected(t *testing.T) {
	n, err := New(fastConfig(ipsec.SuiteAES128CTR))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.DistillKeys(2048, 60); err != nil {
		t.Fatal(err)
	}
	if err := n.Establish(); err != nil {
		t.Fatal(err)
	}
	n.EveTap = func(p *ipsec.Packet) (*ipsec.Packet, bool) {
		p.Payload[len(p.Payload)-1] ^= 1
		return p, false
	}
	if _, err := n.Send(HostA, HostB, 1, []byte("data")); !errors.Is(err, ipsec.ErrIntegrity) {
		t.Fatalf("tampered tunnel packet: err = %v, want ErrIntegrity", err)
	}
	if gwStats := n.B.GW.Stats(); gwStats.IntegFailures != 1 {
		t.Errorf("IntegFailures = %d", gwStats.IntegFailures)
	}
}

func TestRolloverUnderByteLifetime(t *testing.T) {
	cfg := fastConfig(ipsec.SuiteAES128CTR)
	cfg.Life = ipsec.Lifetime{Bytes: 500}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.DistillKeys(8192, 200); err != nil {
		t.Fatal(err)
	}
	if err := n.Establish(); err != nil {
		t.Fatal(err)
	}
	rollovers := 0
	for i := uint32(1); i <= 40; i++ {
		_, err := n.SendWithRollover(HostA, HostB, i, make([]byte, 100))
		if err != nil {
			// Rollover may exhaust the pool: distill more and retry.
			if derr := n.DistillKeys(2048, 120); derr != nil {
				t.Fatalf("packet %d: %v (and distill: %v)", i, err, derr)
			}
			if _, err = n.SendWithRollover(HostA, HostB, i, make([]byte, 100)); err != nil {
				t.Fatalf("packet %d after refill: %v", i, err)
			}
		}
	}
	if st := n.A.IKE.Stats(); st.Phase2Initiated < 5 {
		t.Errorf("expected several rollovers, Phase2Initiated = %d", st.Phase2Initiated)
	}
	_ = rollovers
}

func TestKeyRaceOTPStarves(t *testing.T) {
	// E8's core claim in miniature: an OTP tunnel consumes pad at
	// traffic rate; with a slow QKD link the race is lost (rollovers
	// fail on an empty reservoir), while an AES tunnel sips a Qblock
	// per rollover and keeps running.
	if testing.Short() {
		t.Skip("short mode: the key race is wall-clock bound (IKE timeouts)")
	}
	mk := func(suite ipsec.CipherSuite) KeyRaceResult {
		cfg := fastConfig(suite)
		cfg.OTPBits = 16384
		cfg.IKE.Phase2Timeout = 50 * 1e6 // 50ms: fail fast when starved
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		if err := n.DistillKeys(3*16384, 400); err != nil {
			t.Fatal(err)
		}
		if err := n.Establish(); err != nil {
			t.Fatal(err)
		}
		res, err := n.RunKeyRace(10, 1, 30, 200)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	otp := mk(ipsec.SuiteOTP)
	aes := mk(ipsec.SuiteAES128CTR)
	if aes.Delivered < otp.Delivered {
		t.Errorf("AES (%d delivered) did not beat OTP (%d) under key starvation",
			aes.Delivered, otp.Delivered)
	}
	if otp.RolloverFails == 0 {
		t.Error("OTP tunnel never starved — race parameters too generous")
	}
	if aes.RolloverFails > otp.RolloverFails {
		t.Errorf("AES starved more often (%d) than OTP (%d)", aes.RolloverFails, otp.RolloverFails)
	}
}

func TestRealisticLinkVPN(t *testing.T) {
	// Full stack at the paper's 10 km operating point.
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Config{
		Photonics:  photonics.DefaultParams(),
		QKD:        core.Config{BatchBits: 4096, Corrector: core.CorrectorClassic},
		Suite:      ipsec.SuiteAES128CTR,
		FrameSlots: 100000,
		Seed:       7,
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.DistillKeys(1100, 300); err != nil {
		t.Fatal(err)
	}
	if err := n.Establish(); err != nil {
		t.Fatal(err)
	}
	if err := n.Ping(1); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkVPNPacket(b *testing.B) {
	n, err := New(fastConfig(ipsec.SuiteAES128CTR))
	if err != nil {
		b.Fatal(err)
	}
	defer n.Close()
	if err := n.DistillKeys(2048, 60); err != nil {
		b.Fatal(err)
	}
	if err := n.Establish(); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1000)
	b.SetBytes(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Send(HostA, HostB, uint32(i), payload); err != nil {
			b.Fatal(err)
		}
	}
}

func TestKDSModeEndToEnd(t *testing.T) {
	// Full stack through the key delivery service: distillation
	// deposits into per-site KDS instances, quick mode carries
	// (stream, sequence) tickets, traffic flows — which proves the two
	// endpoints resolved every ticket to bit-identical key.
	cfg := fastConfig(ipsec.SuiteAES128CTR)
	cfg.KDS = true
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if n.A.KDS == nil || n.B.KDS == nil {
		t.Fatal("KDS mode did not build per-site services")
	}
	if err := n.DistillKeys(2048, 60); err != nil {
		t.Fatal(err)
	}
	if err := n.Establish(); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Send(HostA, HostB, 1, []byte("ticketed hello")); err != nil {
		t.Fatalf("A->B: %v", err)
	}
	if _, err := n.Send(HostB, HostA, 2, []byte("ticketed reply")); err != nil {
		t.Fatalf("B->A: %v", err)
	}
	// Rollover draws a fresh ticket.
	if err := n.DistillKeys(2048, 60); err != nil {
		t.Fatal(err)
	}
	if err := n.Renegotiate(); err != nil {
		t.Fatalf("ticketed rollover: %v", err)
	}
	if err := n.Ping(3); err != nil {
		t.Fatal(err)
	}
	st := n.A.KDS.Stats()
	if st.Granted[1] == 0 { // ClassRekey
		t.Fatalf("no rekey-class grants recorded: %+v", st.Granted)
	}
	if st.ClaimedBits == 0 {
		t.Fatal("no ticket claims recorded")
	}
}

func TestKDSModeOTPTickets(t *testing.T) {
	// One-time-pad tunnels draw pad blocks through the ClassOTP stream.
	cfg := fastConfig(ipsec.SuiteOTP)
	cfg.KDS = true
	cfg.OTPBits = 4096
	cfg.IKE.Phase2Timeout = 2 * time.Second
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	// Enough for the establishment plus a rollover per packet (each
	// negotiation burns 2*OTPBits of pad).
	if err := n.DistillKeys(6*2*4096, 400); err != nil {
		t.Fatal(err)
	}
	if err := n.Establish(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := n.SendWithRollover(HostA, HostB, uint32(i), make([]byte, 256)); err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
	}
	st := n.B.KDS.Stats()
	if st.ClaimedBits == 0 {
		t.Fatal("responder never claimed a pad ticket")
	}
	aGr := n.A.KDS.Stats().Granted
	if aGr[0] == 0 { // ClassOTP
		t.Fatalf("no OTP-class grants on the initiator: %+v", aGr)
	}
}

func TestPumpQNetFeedsBothSites(t *testing.T) {
	// A small wider network: the two VPN gateways joined by two
	// disjoint relay paths.
	rn := relay.NewNetwork(9)
	for _, v := range []string{"gwA", "gwB", "r0", "r1"} {
		rn.AddNode(v)
	}
	for _, e := range [][2]string{{"gwA", "r0"}, {"r0", "gwB"}, {"gwA", "r1"}, {"r1", "gwB"}} {
		if _, err := rn.AddLink(e[0], e[1], 1<<14); err != nil {
			t.Fatal(err)
		}
	}
	qn := qnet.NewNetwork(qnet.Config{Seed: 13})
	qn.RegisterRelay(rn)
	qn.Tick()

	cfg := fastConfig(ipsec.SuiteAES128CTR)
	cfg.KDS = true
	cfg.QNet = qn
	cfg.QNetSrc, cfg.QNetDst = "gwA", "gwB"
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	beforeA, beforeB := n.A.KDS.Stats(), n.B.KDS.Stats()
	if err := n.PumpQNet(2048); err != nil {
		t.Fatal(err)
	}
	afterA, afterB := n.A.KDS.Stats(), n.B.KDS.Stats()
	if got := afterA.DepositedBits - beforeA.DepositedBits; got != 2048 {
		t.Errorf("site A ingested %d qnet bits, want 2048", got)
	}
	if got := afterB.DepositedBits - beforeB.DepositedBits; got != 2048 {
		t.Errorf("site B ingested %d qnet bits, want 2048", got)
	}
	fs := n.A.KDS.Source("qnet").Stats()
	if fs.DepositedBits != 2048 {
		t.Errorf("qnet feed saw %d bits", fs.DepositedBits)
	}
	// Striped across 2 disjoint paths: neither relay could reconstruct
	// any of it, and each path consumed the pads for its share.
	for _, l := range rn.Links() {
		if got := 1<<14 - l.KeyAvailable(); got != 2048 {
			t.Errorf("link %s-%s consumed %d pad bits, want 2048", l.A, l.B, got)
		}
	}
}
