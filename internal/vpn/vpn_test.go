package vpn

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"qkd/internal/core"
	"qkd/internal/ike"
	"qkd/internal/ipsec"
	"qkd/internal/keypool"
	"qkd/internal/photonics"
	"qkd/internal/qnet"
	"qkd/internal/relay"
)

// fastPhotonics is a lossless link so tests distill quickly.
func fastPhotonics() photonics.Params {
	p := photonics.DefaultParams()
	p.MeanPhotons = 0.1
	p.FiberKm = 0
	p.SystemLossDB = 0
	p.DetectorEff = 1.0
	p.DarkCountProb = 1e-5
	p.Visibility = 0.96
	return p
}

func fastConfig(suite ipsec.CipherSuite) Config {
	return Config{
		Photonics: fastPhotonics(),
		QKD:       core.Config{BatchBits: 2048},
		Suite:     suite,
		OTPBits:   8192,
		Seed:      42,
	}
}

func TestEndToEndVPN(t *testing.T) {
	n, err := New(fastConfig(ipsec.SuiteAES128CTR))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.DistillKeys(2048, 60); err != nil {
		t.Fatal(err)
	}
	if err := n.Establish(); err != nil {
		t.Fatal(err)
	}
	// Traffic both directions.
	got, err := n.Send(HostA, HostB, 1, []byte("hello bob"))
	if err != nil {
		t.Fatalf("A->B: %v", err)
	}
	if !bytes.Equal(got, []byte("hello bob")) {
		t.Fatalf("payload corrupted: %q", got)
	}
	got, err = n.Send(HostB, HostA, 2, []byte("hello alice"))
	if err != nil {
		t.Fatalf("B->A: %v", err)
	}
	if !bytes.Equal(got, []byte("hello alice")) {
		t.Fatalf("payload corrupted: %q", got)
	}
	if d := n.Stats().Delivered; d != 2 {
		t.Errorf("delivered = %d", d)
	}
}

func TestVPNOverOTP(t *testing.T) {
	n, err := New(fastConfig(ipsec.SuiteOTP))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	// OTP needs 2x8192 bits plus margin.
	if err := n.DistillKeys(3*8192, 300); err != nil {
		t.Fatal(err)
	}
	if err := n.Establish(); err != nil {
		t.Fatal(err)
	}
	for i := uint32(1); i <= 20; i++ {
		if err := n.Ping(i); err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
	}
}

func TestTunnelHidesPlaintext(t *testing.T) {
	n, err := New(fastConfig(ipsec.SuiteAES128CTR))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.DistillKeys(2048, 60); err != nil {
		t.Fatal(err)
	}
	if err := n.Establish(); err != nil {
		t.Fatal(err)
	}
	secret := []byte("extremely secret enclave data")
	n.EveTap = func(p *ipsec.Packet) (*ipsec.Packet, bool) {
		if p.Proto != ipsec.ProtoESP {
			t.Errorf("non-ESP packet on the internet: proto %d", p.Proto)
		}
		if bytes.Contains(p.Payload, secret[:12]) {
			t.Error("plaintext visible on the wire")
		}
		return p, false
	}
	if _, err := n.Send(HostA, HostB, 1, secret); err != nil {
		t.Fatal(err)
	}
}

func TestEveTamperingDetected(t *testing.T) {
	n, err := New(fastConfig(ipsec.SuiteAES128CTR))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.DistillKeys(2048, 60); err != nil {
		t.Fatal(err)
	}
	if err := n.Establish(); err != nil {
		t.Fatal(err)
	}
	n.EveTap = func(p *ipsec.Packet) (*ipsec.Packet, bool) {
		p.Payload[len(p.Payload)-1] ^= 1
		return p, false
	}
	if _, err := n.Send(HostA, HostB, 1, []byte("data")); !errors.Is(err, ipsec.ErrIntegrity) {
		t.Fatalf("tampered tunnel packet: err = %v, want ErrIntegrity", err)
	}
	if gwStats := n.B.GW.Stats(); gwStats.IntegFailures != 1 {
		t.Errorf("IntegFailures = %d", gwStats.IntegFailures)
	}
}

func TestRolloverUnderByteLifetime(t *testing.T) {
	cfg := fastConfig(ipsec.SuiteAES128CTR)
	cfg.Life = ipsec.Lifetime{Bytes: 500}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.DistillKeys(8192, 200); err != nil {
		t.Fatal(err)
	}
	if err := n.Establish(); err != nil {
		t.Fatal(err)
	}
	rollovers := 0
	for i := uint32(1); i <= 40; i++ {
		_, err := n.SendWithRollover(HostA, HostB, i, make([]byte, 100))
		if err != nil {
			// Rollover may exhaust the pool: distill more and retry.
			if derr := n.DistillKeys(2048, 120); derr != nil {
				t.Fatalf("packet %d: %v (and distill: %v)", i, err, derr)
			}
			if _, err = n.SendWithRollover(HostA, HostB, i, make([]byte, 100)); err != nil {
				t.Fatalf("packet %d after refill: %v", i, err)
			}
		}
	}
	if st := n.A.IKE.Stats(); st.Phase2Initiated < 5 {
		t.Errorf("expected several rollovers, Phase2Initiated = %d", st.Phase2Initiated)
	}
	_ = rollovers
}

func TestKeyRaceOTPStarves(t *testing.T) {
	// E8's core claim in miniature: an OTP tunnel consumes pad at
	// traffic rate; with a slow QKD link the race is lost (rollovers
	// fail on an empty reservoir), while an AES tunnel sips a Qblock
	// per rollover and keeps running.
	if testing.Short() {
		t.Skip("short mode: the key race is wall-clock bound (IKE timeouts)")
	}
	mk := func(suite ipsec.CipherSuite) KeyRaceResult {
		cfg := fastConfig(suite)
		cfg.OTPBits = 16384
		cfg.IKE.Phase2Timeout = 50 * 1e6 // 50ms: fail fast when starved
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		if err := n.DistillKeys(3*16384, 400); err != nil {
			t.Fatal(err)
		}
		if err := n.Establish(); err != nil {
			t.Fatal(err)
		}
		res, err := n.RunKeyRace(10, 1, 30, 200)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	otp := mk(ipsec.SuiteOTP)
	aes := mk(ipsec.SuiteAES128CTR)
	if aes.Delivered < otp.Delivered {
		t.Errorf("AES (%d delivered) did not beat OTP (%d) under key starvation",
			aes.Delivered, otp.Delivered)
	}
	if otp.RolloverFails == 0 {
		t.Error("OTP tunnel never starved — race parameters too generous")
	}
	if aes.RolloverFails > otp.RolloverFails {
		t.Errorf("AES starved more often (%d) than OTP (%d)", aes.RolloverFails, otp.RolloverFails)
	}
}

func TestRealisticLinkVPN(t *testing.T) {
	// Full stack at the paper's 10 km operating point.
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Config{
		Photonics:  photonics.DefaultParams(),
		QKD:        core.Config{BatchBits: 4096, Corrector: core.CorrectorClassic},
		Suite:      ipsec.SuiteAES128CTR,
		FrameSlots: 100000,
		Seed:       7,
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.DistillKeys(1100, 300); err != nil {
		t.Fatal(err)
	}
	if err := n.Establish(); err != nil {
		t.Fatal(err)
	}
	if err := n.Ping(1); err != nil {
		t.Fatal(err)
	}
}

// mixedTunnelSpecs declares n tunnels over per-tunnel /24 enclaves with
// a mix of cipher suites (mostly AES, some 3DES, the last one OTP).
func mixedTunnelSpecs(n int, life ipsec.Lifetime, otpBits int) []TunnelSpec {
	specs := make([]TunnelSpec, n)
	for i := range specs {
		suite := ipsec.SuiteAES128CTR
		switch {
		case i == n-1:
			suite = ipsec.SuiteOTP
		case i >= n-3:
			suite = ipsec.Suite3DESCBC
		}
		specs[i] = TunnelSpec{
			Name:    fmt.Sprintf("t%d", i),
			PrefixA: ipsec.MustPrefix(fmt.Sprintf("10.1.%d.0/24", i)),
			PrefixB: ipsec.MustPrefix(fmt.Sprintf("10.2.%d.0/24", i)),
			Suite:   suite,
			Life:    life,
			OTPBits: otpBits,
		}
	}
	return specs
}

// TestRenegotiationBoundsInboundSAD is the rollover-leak regression:
// before the generation chain, every renegotiation left the superseded
// inbound SA in the SAD forever (RemoveInbound had no callers), so
// bySPI grew without bound and expired SAs kept decrypting.
func TestRenegotiationBoundsInboundSAD(t *testing.T) {
	n, err := New(fastConfig(ipsec.SuiteAES128CTR))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.DistillKeys(18*1024, 900); err != nil {
		t.Fatal(err)
	}
	if err := n.Establish(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 12; i++ {
		if err := n.Renegotiate(); err != nil {
			t.Fatalf("renegotiation %d: %v", i, err)
		}
		for side, gw := range map[string]*ipsec.Gateway{"A": n.A.GW, "B": n.B.GW} {
			in, out := gw.SAD.Count()
			if in > 2 || out > 1 {
				t.Fatalf("gateway %s after %d renegotiations: %d inbound / %d outbound SAs (leak)",
					side, i, in, out)
			}
		}
		// Traffic still flows across every rollover generation.
		if err := n.Ping(uint32(i)); err != nil {
			t.Fatalf("ping after renegotiation %d: %v", i, err)
		}
	}
}

// TestConcurrentMultiTunnelTraffic soaks 8 tunnels with parallel flows,
// mixed cipher suites, byte lifetimes forcing mid-soak rollovers, and
// explicit mid-soak renegotiations — the concurrent dataplane under
// -race.
func TestConcurrentMultiTunnelTraffic(t *testing.T) {
	const tunnels = 8
	const packets = 16
	cfg := fastConfig(ipsec.SuiteAES128CTR)
	cfg.Tunnels = mixedTunnelSpecs(tunnels, ipsec.Lifetime{Bytes: 512}, 8192)
	cfg.IKE.Phase2Timeout = 5 * time.Second
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.DistillKeys(100_000, 6000); err != nil {
		t.Fatal(err)
	}
	if err := n.Establish(); err != nil {
		t.Fatal(err)
	}

	errCh := make(chan error, tunnels)
	var wg sync.WaitGroup
	for i := 0; i < tunnels; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src := ipsec.MustAddr(fmt.Sprintf("10.1.%d.5", i))
			dst := ipsec.MustAddr(fmt.Sprintf("10.2.%d.9", i))
			payload := bytes.Repeat([]byte{byte(0xA0 + i)}, 40)
			for p := 0; p < packets; p++ {
				got, err := n.SendWithRollover(src, dst, uint32(p), payload)
				if err != nil {
					errCh <- fmt.Errorf("tunnel %d packet %d: %w", i, p, err)
					return
				}
				if !bytes.Equal(got, payload) {
					errCh <- fmt.Errorf("tunnel %d: payload corrupted (cross-tunnel leak?)", i)
					return
				}
			}
		}(i)
	}
	// Mid-soak forced rollovers while traffic is in flight.
	for _, name := range []string{"t1", "t4"} {
		if err := n.RenegotiateTunnel(name); err != nil {
			errCh <- fmt.Errorf("mid-soak renegotiate %s: %w", name, err)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	delivered := n.Stats().Delivered
	if delivered != tunnels*packets {
		t.Errorf("delivered = %d, want %d", delivered, tunnels*packets)
	}
	if st := n.A.IKE.Stats(); st.Phase2Initiated < tunnels+2 {
		t.Errorf("Phase2Initiated = %d, want at least %d (establish + mid-soak rollovers)",
			st.Phase2Initiated, tunnels+2)
	}
	for side, gw := range map[string]*ipsec.Gateway{"A": n.A.GW, "B": n.B.GW} {
		st := gw.Stats()
		if st.IntegFailures != 0 {
			t.Errorf("gateway %s: %d integrity failures under concurrency", side, st.IntegFailures)
		}
		in, out := gw.SAD.Count()
		if in > 2*tunnels || out > tunnels {
			t.Errorf("gateway %s: SAD %d inbound / %d outbound, want <= %d / <= %d",
				side, in, out, 2*tunnels, tunnels)
		}
	}
}

// TestTunnelIsolation verifies flows only cross their own tunnel: a
// flow with no matching tunnel is refused, and per-tunnel suites hold.
func TestTunnelIsolation(t *testing.T) {
	cfg := fastConfig(ipsec.SuiteAES128CTR)
	cfg.Tunnels = mixedTunnelSpecs(2, ipsec.Lifetime{}, 8192)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.DistillKeys(20*1024, 900); err != nil {
		t.Fatal(err)
	}
	if err := n.Establish(); err != nil {
		t.Fatal(err)
	}
	if got := n.Tunnels(); len(got) != 2 || got[0] != "t0" || got[1] != "t1" {
		t.Fatalf("Tunnels() = %v", got)
	}
	// Both tunnels carry their own flows.
	for i := 0; i < 2; i++ {
		src := ipsec.MustAddr(fmt.Sprintf("10.1.%d.5", i))
		dst := ipsec.MustAddr(fmt.Sprintf("10.2.%d.9", i))
		if _, err := n.Send(src, dst, uint32(i), []byte("scoped")); err != nil {
			t.Fatalf("tunnel %d: %v", i, err)
		}
	}
	// A flow outside every tunnel's selectors has no policy.
	_, err = n.Send(ipsec.MustAddr("10.1.9.5"), ipsec.MustAddr("10.2.9.9"), 99, []byte("stray"))
	if !errors.Is(err, ipsec.ErrNoPolicy) {
		t.Fatalf("stray flow: %v, want ErrNoPolicy", err)
	}
	if err := n.RenegotiateTunnel("nope"); err == nil {
		t.Error("renegotiating an unknown tunnel succeeded")
	}
}

func BenchmarkVPNPacket(b *testing.B) {
	n, err := New(fastConfig(ipsec.SuiteAES128CTR))
	if err != nil {
		b.Fatal(err)
	}
	defer n.Close()
	if err := n.DistillKeys(2048, 60); err != nil {
		b.Fatal(err)
	}
	if err := n.Establish(); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1000)
	b.SetBytes(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Send(HostA, HostB, uint32(i), payload); err != nil {
			b.Fatal(err)
		}
	}
}

func TestKDSModeEndToEnd(t *testing.T) {
	// Full stack through the key delivery service: distillation
	// deposits into per-site KDS instances, quick mode carries
	// (stream, sequence) tickets, traffic flows — which proves the two
	// endpoints resolved every ticket to bit-identical key.
	cfg := fastConfig(ipsec.SuiteAES128CTR)
	cfg.KDS = true
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if n.A.KDS == nil || n.B.KDS == nil {
		t.Fatal("KDS mode did not build per-site services")
	}
	if err := n.DistillKeys(2048, 60); err != nil {
		t.Fatal(err)
	}
	if err := n.Establish(); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Send(HostA, HostB, 1, []byte("ticketed hello")); err != nil {
		t.Fatalf("A->B: %v", err)
	}
	if _, err := n.Send(HostB, HostA, 2, []byte("ticketed reply")); err != nil {
		t.Fatalf("B->A: %v", err)
	}
	// Rollover draws a fresh ticket.
	if err := n.DistillKeys(2048, 60); err != nil {
		t.Fatal(err)
	}
	if err := n.Renegotiate(); err != nil {
		t.Fatalf("ticketed rollover: %v", err)
	}
	if err := n.Ping(3); err != nil {
		t.Fatal(err)
	}
	st := n.A.KDS.Stats()
	if st.Granted[1] == 0 { // ClassRekey
		t.Fatalf("no rekey-class grants recorded: %+v", st.Granted)
	}
	if st.ClaimedBits == 0 {
		t.Fatal("no ticket claims recorded")
	}
}

func TestKDSModeOTPTickets(t *testing.T) {
	// One-time-pad tunnels draw pad blocks through the ClassOTP stream.
	cfg := fastConfig(ipsec.SuiteOTP)
	cfg.KDS = true
	cfg.OTPBits = 4096
	cfg.IKE.Phase2Timeout = 2 * time.Second
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	// Enough for the establishment plus a rollover per packet (each
	// negotiation burns 2*OTPBits of pad).
	if err := n.DistillKeys(6*2*4096, 400); err != nil {
		t.Fatal(err)
	}
	if err := n.Establish(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := n.SendWithRollover(HostA, HostB, uint32(i), make([]byte, 256)); err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
	}
	st := n.B.KDS.Stats()
	if st.ClaimedBits == 0 {
		t.Fatal("responder never claimed a pad ticket")
	}
	aGr := n.A.KDS.Stats().Granted
	if aGr[0] == 0 { // ClassOTP
		t.Fatalf("no OTP-class grants on the initiator: %+v", aGr)
	}
}

func TestPumpQNetFeedsBothSites(t *testing.T) {
	// A small wider network: the two VPN gateways joined by two
	// disjoint relay paths.
	rn := relay.NewNetwork(9)
	for _, v := range []string{"gwA", "gwB", "r0", "r1"} {
		rn.AddNode(v)
	}
	for _, e := range [][2]string{{"gwA", "r0"}, {"r0", "gwB"}, {"gwA", "r1"}, {"r1", "gwB"}} {
		if _, err := rn.AddLink(e[0], e[1], 1<<14); err != nil {
			t.Fatal(err)
		}
	}
	qn := qnet.NewNetwork(qnet.Config{Seed: 13})
	qn.RegisterRelay(rn)
	qn.Tick()

	cfg := fastConfig(ipsec.SuiteAES128CTR)
	cfg.KDS = true
	cfg.QNet = qn
	cfg.QNetSrc, cfg.QNetDst = "gwA", "gwB"
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	beforeA, beforeB := n.A.KDS.Stats(), n.B.KDS.Stats()
	if err := n.PumpQNet(2048); err != nil {
		t.Fatal(err)
	}
	afterA, afterB := n.A.KDS.Stats(), n.B.KDS.Stats()
	if got := afterA.DepositedBits - beforeA.DepositedBits; got != 2048 {
		t.Errorf("site A ingested %d qnet bits, want 2048", got)
	}
	if got := afterB.DepositedBits - beforeB.DepositedBits; got != 2048 {
		t.Errorf("site B ingested %d qnet bits, want 2048", got)
	}
	fs := n.A.KDS.Source("qnet").Stats()
	if fs.DepositedBits != 2048 {
		t.Errorf("qnet feed saw %d bits", fs.DepositedBits)
	}
	// Striped across 2 disjoint paths: neither relay could reconstruct
	// any of it, and each path consumed the pads for its share.
	for _, l := range rn.Links() {
		if got := 1<<14 - l.KeyAvailable(); got != 2048 {
			t.Errorf("link %s-%s consumed %d pad bits, want 2048", l.A, l.B, got)
		}
	}
}

// TestFabricStormCoalesces brings up a small fabric, drives every
// tunnel across its soft byte-lifetime threshold in one burst, and
// verifies the fabric-wide rollover storm coalesces into a handful of
// batched IKE exchanges rather than one per tunnel. Sized to run under
// -race in the CI short lane.
func TestFabricStormCoalesces(t *testing.T) {
	const pairs, perPair = 2, 48
	f, err := NewFabric(FabricConfig{
		Pairs:          pairs,
		TunnelsPerPair: perPair,
		OTPEvery:       8,
		OTPBits:        40960,
		Life:           ipsec.Lifetime{Bytes: 2200},
		IKE:            ike.Config{Phase2Timeout: 10 * time.Second},
		Seed:           99,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Key for the initial establishment plus a couple of rollovers.
	f.ChargeKey(4 * f.KeyBitsPerRollover())
	if err := f.Establish(); err != nil {
		t.Fatal(err)
	}
	if got := f.Tunnels(); got != pairs*perPair {
		t.Fatalf("Tunnels() = %d, want %d", got, pairs*perPair)
	}
	establishBatches := make([]uint64, pairs)
	for p, n := range f.Nets {
		establishBatches[p] = n.A.IKE.Stats().Phase2Batches
	}

	// Two bursts: the first stays under the 7/8 soft threshold, the
	// second crosses it on every tunnel at once — the storm.
	payload := bytes.Repeat([]byte{0x5A}, 1000)
	burst := func(id uint32) {
		t.Helper()
		for _, n := range f.Nets {
			for i := 0; i < perPair; i++ {
				src := ipsec.Addr{10, byte(i >> 8), byte(i), 5}
				dst := ipsec.Addr{11, byte(i >> 8), byte(i), 9}
				got, err := n.Send(src, dst, id, payload)
				if err != nil {
					t.Fatalf("tunnel %d burst %d: %v", i, id, err)
				}
				if !bytes.Equal(got, payload) {
					t.Fatalf("tunnel %d burst %d: payload corrupted", i, id)
				}
			}
		}
	}
	burst(1)
	burst(2)

	// The storm drains in the background; every tunnel must roll to a
	// fresh generation.
	deadline := time.Now().Add(20 * time.Second)
	for _, n := range f.Nets {
		for _, tn := range n.tunnels {
			for tn.gen.Load() < 2 {
				if time.Now().After(deadline) {
					t.Fatalf("tunnel %s never rolled over (gen %d)", tn.spec.Name, tn.gen.Load())
				}
				time.Sleep(5 * time.Millisecond)
			}
		}
	}
	// Fresh SAs carry the third burst.
	burst(3)

	for p, n := range f.Nets {
		st := n.A.IKE.Stats()
		storm := st.Phase2Batches - establishBatches[p]
		if storm == 0 {
			t.Errorf("pair %d: no batched exchanges during the storm", p)
		}
		if storm > perPair/4 {
			t.Errorf("pair %d: storm took %d batched exchanges for %d tunnels (not coalescing)",
				p, storm, perPair)
		}
		// Ticket allocation amortizes across the batch: far fewer QoS
		// passes than tunnels negotiated (establish + storm = 2 per
		// tunnel), where unbatched negotiation pays one per tunnel.
		if st.TicketAllocs >= 2*perPair {
			t.Errorf("pair %d: %d ticket allocs for %d negotiations (no amortization)",
				p, st.TicketAllocs, 2*2*perPair)
		}
		for side, gw := range map[string]*ipsec.Gateway{"A": n.A.GW, "B": n.B.GW} {
			gst := gw.Stats()
			if gst.IntegFailures != 0 {
				t.Errorf("pair %d gateway %s: %d integrity failures", p, side, gst.IntegFailures)
			}
			in, _ := gw.SAD.Count()
			if in > 2*perPair {
				t.Errorf("pair %d gateway %s: %d inbound SAs for %d tunnels (unbounded SAD)",
					p, side, in, perPair)
			}
		}
	}
}

// TestRekeyBackoffBudgetAndRecovery is the retry-storm regression: a
// rekey that fails on a starved reservoir must retry on a jittered
// exponential backoff a bounded number of times — not bounce hot
// between the dataplane signal and the queue — then stand down until
// traffic re-signals after the pool refills.
func TestRekeyBackoffBudgetAndRecovery(t *testing.T) {
	cfg := fastConfig(ipsec.SuiteAES128CTR)
	cfg.Life = ipsec.Lifetime{Bytes: 2200}
	cfg.IKE.Phase2Timeout = 30 * time.Millisecond // starved negotiation fails fast
	cfg.RekeyBackoff = time.Millisecond
	cfg.RekeyBackoffMax = 8 * time.Millisecond
	cfg.RekeyRetryBudget = 3
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	// Just enough key for the establishment; the rollover will starve.
	if err := n.DistillKeys(2048, 60); err != nil {
		t.Fatal(err)
	}
	if err := n.Establish(); err != nil {
		t.Fatal(err)
	}
	var tn *tunnel
	for _, x := range n.tunnels {
		tn = x
	}
	// Drain what the establishment left over — both mirrored pools
	// equally, so IKE's offset bookkeeping stays aligned.
	for _, pool := range []keypool.Pool{n.A.Pool, n.B.Pool} {
		if avail := pool.Available(); avail > 0 {
			if _, err := pool.TryConsume(avail); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Cross the soft-expiry threshold (7/8 of 2200 bytes): exactly one
	// latched signal queues the background rekey against a dry pool.
	payload := make([]byte, 1000)
	for i := uint32(1); i <= 2; i++ {
		if _, err := n.Send(HostA, HostB, i, payload); err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(15 * time.Second)
	for n.Stats().RekeyAbandoned == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("rekey never exhausted its budget: %+v", n.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := n.Stats()
	if st.RekeyRetries != uint64(cfg.RekeyRetryBudget) {
		t.Errorf("RekeyRetries = %d, want exactly the budget %d (not hot-looping, not quitting early)",
			st.RekeyRetries, cfg.RekeyRetryBudget)
	}
	if st.RekeyAbandoned != 1 {
		t.Errorf("RekeyAbandoned = %d, want 1", st.RekeyAbandoned)
	}
	if g := tn.gen.Load(); g != 1 {
		t.Errorf("tunnel gen = %d after starved rekey, want 1 (no key to roll with)", g)
	}
	// Refill; the next traffic-driven signal (hard expiry removes the
	// SA and fires OnMissingSA) rekeys successfully on its first try.
	if err := n.DistillKeys(8192, 200); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(15 * time.Second)
	for i := uint32(3); tn.gen.Load() < 2; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("tunnel never recovered after refill: %+v", n.Stats())
		}
		_, _ = n.Send(HostA, HostB, i, payload)
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := n.Send(HostA, HostB, 99, payload); err != nil {
		t.Fatalf("post-recovery send: %v", err)
	}
	st = n.Stats()
	if st.RekeyRetries != uint64(cfg.RekeyRetryBudget) || st.RekeyAbandoned != 1 {
		t.Errorf("recovery burned extra attempts: retries %d abandoned %d", st.RekeyRetries, st.RekeyAbandoned)
	}
	if f := tn.fails.Load(); f != 0 {
		t.Errorf("tunnel fails = %d after successful rekey, want 0", f)
	}
}

// TestGatewayRestartMidRollover crash-restarts the B gateway in the
// middle of a rollover storm and verifies clean resync: every tunnel
// comes back on fresh SAs, neither SAD leaks superseded inbound SAs,
// and the two mirrored KDS ledgers re-converge to identical cursors —
// no ticket double-burned, none lost. Sized to run under -race.
func TestGatewayRestartMidRollover(t *testing.T) {
	const tunnels = 4
	specs := make([]TunnelSpec, tunnels)
	for i := range specs {
		specs[i] = TunnelSpec{
			Name:    fmt.Sprintf("t%d", i),
			PrefixA: ipsec.MustPrefix(fmt.Sprintf("10.1.%d.0/24", i)),
			PrefixB: ipsec.MustPrefix(fmt.Sprintf("10.2.%d.0/24", i)),
			Suite:   ipsec.SuiteAES128CTR,
			Life:    ipsec.Lifetime{Bytes: 2200},
		}
	}
	cfg := fastConfig(ipsec.SuiteAES128CTR)
	cfg.KDS = true
	cfg.Tunnels = specs
	cfg.IKE.Phase2Timeout = 5 * time.Second
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.DistillKeys(60_000, 4000); err != nil {
		t.Fatal(err)
	}
	if err := n.Establish(); err != nil {
		t.Fatal(err)
	}

	// The storm: every tunnel's flow pushes its SA across soft expiry
	// and on through hard expiry, so background rekeys are continuously
	// in flight when the gateway dies. Send errors inside the outage
	// window are expected (no-SA gaps); the assertions come after.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < tunnels; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src := ipsec.MustAddr(fmt.Sprintf("10.1.%d.5", i))
			dst := ipsec.MustAddr(fmt.Sprintf("10.2.%d.9", i))
			payload := bytes.Repeat([]byte{byte(0xB0 + i)}, 1000)
			for p := uint32(1); ; p++ {
				select {
				case <-stop:
					return
				default:
				}
				_, _ = n.Send(src, dst, p, payload)
			}
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let rollovers get in flight
	if err := n.RestartSite('B'); err != nil {
		t.Fatalf("restart: %v", err)
	}
	close(stop)
	wg.Wait()

	if got := n.Stats().Restarts; got != 1 {
		t.Errorf("Restarts = %d, want 1", got)
	}
	// Every tunnel carries traffic again on post-restart SAs.
	for i := 0; i < tunnels; i++ {
		src := ipsec.MustAddr(fmt.Sprintf("10.1.%d.5", i))
		dst := ipsec.MustAddr(fmt.Sprintf("10.2.%d.9", i))
		payload := bytes.Repeat([]byte{byte(0xC0 + i)}, 64)
		deadline := time.Now().Add(15 * time.Second)
		for {
			got, err := n.SendWithRollover(src, dst, 9000+uint32(i), payload)
			if err == nil {
				if !bytes.Equal(got, payload) {
					t.Fatalf("tunnel %d: payload corrupted after restart", i)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("tunnel %d never recovered after restart: %v", i, err)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	// No leaked inbound SAs: at most cur+prev per tunnel on each side.
	for side, gw := range map[string]*ipsec.Gateway{"A": n.A.GW, "B": n.B.GW} {
		in, out := gw.SAD.Count()
		if in > 2*tunnels || out > tunnels {
			t.Errorf("gateway %s: SAD %d inbound / %d outbound after restart, want <= %d / <= %d",
				side, in, out, 2*tunnels, tunnels)
		}
	}
	// Ledger convergence: once in-flight rekeys settle, both mirrored
	// services must have burned the exact same ticket ranges.
	deadline := time.Now().Add(10 * time.Second)
	for {
		ca, cb := n.A.KDS.Cursor(), n.B.KDS.Cursor()
		if ca == cb {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ledger cursors diverged after restart: A=%d B=%d", ca, cb)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
