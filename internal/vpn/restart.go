package vpn

import (
	"fmt"

	"qkd/internal/channel"
	"qkd/internal/ike"
)

// RestartSite crash-restarts one gateway ('A' or 'B') and resynchronizes
// the network, the recovery path a deployed gateway needs after a power
// cycle mid-rollover:
//
//  1. Both IKE daemons stop — the control channel between them died
//     with the crashed peer. In-flight negotiations fail fast; a
//     responder holding half-claimed tickets releases them, so both
//     sites' ledgers burn identical ranges.
//  2. In-flight rekey batches drain: negotiation paths hold the
//     control-plane lock shared for their whole exchange, so acquiring
//     it exclusively here is the drain barrier.
//  3. The crashed side's SAD is reset — kernel SA state does not
//     survive a reboot. The surviving side keeps its SAs; they are
//     superseded through the normal generation chains as fresh SAs
//     install, never leaking.
//  4. Fresh daemons (fresh entropy — a rebooted racoon does not replay
//     its old SPI sequence) run Phase 1 over a new channel.
//  5. Every tunnel renegotiates. Key comes from new ledger tickets; the
//     surviving side's ticket cursor re-converges by following the
//     initiator's fresh tickets, so nothing is double-burned.
//
// Safe to call while traffic and background rekeys are in flight; not
// safe concurrently with Close or another RestartSite.
func (n *Network) RestartSite(side byte) error {
	if side != 'A' && side != 'B' {
		return fmt.Errorf("vpn: unknown site %q (want 'A' or 'B')", side)
	}
	n.ikeMu.RLock()
	oldA, oldB := n.A.IKE, n.B.IKE
	n.ikeMu.RUnlock()
	oldA.Stop()
	oldB.Stop()

	//lint:lockorder ikeMu is write-held across the bounded daemon start handshake so no tunnel ever observes a half-swapped daemon pair; RestartSite is documented as not concurrent with Close or itself
	n.ikeMu.Lock()
	if side == 'A' {
		n.A.GW.SAD.Reset()
	} else {
		n.B.GW.SAD.Reset()
	}
	gen := n.restarts.Add(1)
	cfgA, cfgB := n.ikeCfgA, n.ikeCfgB
	cfgA.Seed ^= 0x9E3779B97F4A7C15 * gen
	cfgB.Seed ^= 0xC2B2AE3D27D4EB4F * gen
	connA, connB := channel.MemPair(64)
	dA := ike.NewDaemon(ike.Initiator, connA, n.A.GW, n.A.Pool, vpnPSK, cfgA, n.ikeLogA)
	dB := ike.NewDaemon(ike.Responder, connB, n.B.GW, n.B.Pool, vpnPSK, cfgB, n.ikeLogB)
	if n.qbA != nil || n.otpA != nil {
		dA.SetKeyStreams(n.qbA, n.otpA)
		dB.SetKeyStreams(n.qbB, n.otpB)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- dB.Start() }()
	err := dA.Start()
	if rerr := <-errCh; err == nil {
		err = rerr
	}
	if err != nil {
		n.ikeMu.Unlock()
		return fmt.Errorf("vpn: restart phase 1: %w", err)
	}
	n.A.IKE, n.B.IKE = dA, dB
	// Old failures died with the old daemons; retry from a clean slate.
	for _, t := range n.tunnels {
		t.fails.Store(0)
	}
	n.ikeMu.Unlock()

	if err := n.Renegotiate(); err != nil {
		return fmt.Errorf("vpn: post-restart renegotiation: %w", err)
	}
	return nil
}
