// Package gf2 implements arithmetic in the binary fields GF(2^n) that
// privacy amplification hashes over. The paper's protocol transmits
// "the (sparse) primitive polynomial of the Galois field, a multiplier
// (n bits long), and an m-bit polynomial to add", with n the number of
// input bits rounded up to a multiple of 32.
//
// Because n varies per privacy-amplification batch, the package finds a
// sparse irreducible polynomial of the required degree at runtime: a
// pentanomial x^n + x^a + x^b + x^c + 1 with small middle exponents
// (degrees that are multiples of 32 are multiples of 8, and no
// irreducible trinomials exist for those degrees). Candidates are
// verified with Rabin's irreducibility test; results are cached per
// degree. Universality of the hash needs a field — irreducibility
// suffices; primitivity would only matter for maximal element order,
// which the hash does not rely on.
//
// Elements are bit vectors packed LSB-first into []uint64 words,
// compatible with package bitarray's layout.
package gf2

import (
	"fmt"
	"math/bits"
	"sync"
)

// Field is GF(2)[x] / (f) for a sparse irreducible f of degree N.
type Field struct {
	// N is the extension degree.
	N int
	// exps are the exponents of f in descending order, starting with N
	// and ending with 0, e.g. {128, 7, 2, 1, 0}.
	exps []int
	// words is len of an element in 64-bit words.
	words int
	// fold holds the word-aligned offsets of the non-leading exponents:
	// x^(N+64i) == sum_e x^(64i+e), so folding a whole word from above
	// the boundary is one shifted xor per exponent at these offsets.
	fold []foldOff
	// foldMis holds the same offsets displaced by 64 - N%64 bits, used
	// when N is not word-aligned: whole stored words then sit that far
	// above the boundary, so their fold targets are at 64i + disp + e.
	foldMis []foldOff
}

// foldOff is one exponent's precomputed reduction offset.
type foldOff struct {
	word  int
	shift uint
}

// newField builds the struct and precomputes the reduction offsets.
func newField(n int, exps []int) *Field {
	f := &Field{N: n, exps: exps, words: (n + 63) / 64}
	f.fold = make([]foldOff, len(exps)-1)
	f.foldMis = make([]foldOff, len(exps)-1)
	disp := (64 - n&63) & 63
	for i, e := range exps[1:] {
		f.fold[i] = foldOff{word: e >> 6, shift: uint(e) & 63}
		f.foldMis[i] = foldOff{word: (e + disp) >> 6, shift: uint(e+disp) & 63}
	}
	return f
}

// fieldCache memoizes the (expensive) polynomial search per degree.
var fieldCache sync.Map // int -> *Field

// knownPolys lists sparse irreducible pentanomials for common degrees,
// found by this package's own search (findIrreducible) and re-verified
// by TestKnownPolyTable. The table short-circuits the runtime search
// for the degrees privacy amplification typically uses.
var knownPolys = map[int][]int{
	32:   {32, 7, 3, 2, 0},
	64:   {64, 4, 3, 1, 0},
	96:   {96, 10, 9, 6, 0},
	128:  {128, 7, 2, 1, 0},
	160:  {160, 5, 3, 2, 0},
	192:  {192, 7, 2, 1, 0},
	224:  {224, 9, 8, 3, 0},
	256:  {256, 10, 5, 2, 0},
	288:  {288, 11, 10, 1, 0},
	320:  {320, 4, 3, 1, 0},
	384:  {384, 12, 3, 2, 0},
	448:  {448, 11, 6, 4, 0},
	512:  {512, 8, 5, 2, 0},
	640:  {640, 14, 3, 2, 0},
	768:  {768, 19, 17, 4, 0},
	896:  {896, 7, 5, 3, 0},
	1024: {1024, 19, 6, 1, 0},
	1280: {1280, 12, 7, 5, 0},
	1536: {1536, 21, 6, 2, 0},
	2048: {2048, 19, 14, 13, 0},
	3072: {3072, 11, 10, 5, 0},
	4096: {4096, 27, 15, 1, 0},
	8192: {8192, 9, 5, 2, 0},
}

// NewField returns a field of degree n, locating (and caching) a sparse
// irreducible polynomial. n must be positive and a multiple of 32, per
// the paper's rounding rule.
func NewField(n int) (*Field, error) {
	if n <= 0 || n%32 != 0 {
		return nil, fmt.Errorf("gf2: degree %d must be a positive multiple of 32", n)
	}
	if f, ok := fieldCache.Load(n); ok {
		return f.(*Field), nil
	}
	exps, ok := knownPolys[n]
	if !ok {
		var err error
		exps, err = findIrreducible(n)
		if err != nil {
			return nil, err
		}
	}
	f := newField(n, exps)
	fieldCache.Store(n, f)
	return f, nil
}

// verifiedPolys memoizes Irreducible verdicts by exponent list. The
// receiving side of privacy amplification validates its peer's
// polynomial on every batch; with fixed-size batches the polynomial
// repeats, and re-running Rabin's test (n squarings in GF(2^n)) per
// batch would dominate the whole distillation pipeline. The cache is
// bounded: polynomials arrive from the network, and an adversary
// proposing a fresh one per batch must not grow process memory — past
// the cap every new polynomial just pays for its own Rabin test.
// Honest links cycle a handful of polynomials, one per degree.
var verifiedPolys struct {
	sync.Mutex
	m map[polyKey]bool
}

const verifiedPolysCap = 256

// polyKey packs an exponent list into a fixed-size comparable value so
// the per-batch cache lookup allocates nothing (the former fmt.Sprint
// key allocated on every privacy-amplification batch). Sixteen slots
// cover every polynomial the wire accepts (privacy caps peers at 16
// exponents); longer or oversized lists fall back to uncached
// validation.
type polyKey struct {
	n int8
	e [16]uint32
}

// packPolyKey returns the key and whether the list is cacheable.
func packPolyKey(exps []int) (polyKey, bool) {
	var k polyKey
	if len(exps) > len(k.e) {
		return k, false
	}
	k.n = int8(len(exps))
	for i, e := range exps {
		if e < 0 || int64(e) > int64(^uint32(0)) {
			return k, false
		}
		k.e[i] = uint32(e)
	}
	return k, true
}

// FieldWithPoly builds a field from explicit exponents (descending,
// ending in 0), verifying irreducibility. The receiving side of privacy
// amplification uses this to validate the polynomial its peer proposed
// — accepting a reducible polynomial would break the hash family's
// universality, so validation is a security check, not pedantry.
// Verdicts are memoized, so only the first sighting of a polynomial
// pays for Rabin's test.
func FieldWithPoly(exps []int) (*Field, error) {
	if len(exps) < 2 || exps[len(exps)-1] != 0 {
		return nil, fmt.Errorf("gf2: polynomial must include x^n and 1")
	}
	for i := 1; i < len(exps); i++ {
		if exps[i] >= exps[i-1] {
			return nil, fmt.Errorf("gf2: exponents must be strictly descending")
		}
	}
	n := exps[0]
	if n <= 0 {
		return nil, fmt.Errorf("gf2: degree %d must be positive", n)
	}
	key, cacheable := packPolyKey(exps)
	seen := false
	var irr bool
	if cacheable {
		verifiedPolys.Lock()
		irr, seen = verifiedPolys.m[key]
		verifiedPolys.Unlock()
	}
	if !seen {
		irr = Irreducible(exps)
		if cacheable {
			verifiedPolys.Lock()
			if verifiedPolys.m == nil {
				verifiedPolys.m = make(map[polyKey]bool)
			}
			if len(verifiedPolys.m) < verifiedPolysCap {
				verifiedPolys.m[key] = irr
			}
			verifiedPolys.Unlock()
		}
	}
	if !irr {
		return nil, fmt.Errorf("gf2: polynomial of degree %d is reducible", n)
	}
	exps = append([]int(nil), exps...) // callers may reuse their slice
	return newField(n, exps), nil
}

// Poly returns the field polynomial's exponents (descending, a copy).
func (f *Field) Poly() []int {
	out := make([]int, len(f.exps))
	copy(out, f.exps)
	return out
}

// Words returns the element size in 64-bit words.
func (f *Field) Words() int { return f.words }

// Mul returns a*b in the field. Inputs must be f.Words() words with
// bits above N zero; the result has the same shape.
func (f *Field) Mul(a, b []uint64) []uint64 {
	prod := clmul(a, b)
	return f.reduce(prod)
}

// Square returns a^2 in the field, in O(n) time (squaring is linear
// over GF(2)).
func (f *Field) Square(a []uint64) []uint64 {
	sq := spread(a)
	return f.reduce(sq)
}

// Mul64 returns a*b in a degree-64 field without allocating. The
// slice-based Mul pays for a product slice and reduction scratch on
// every call, which is fine for privacy amplification's batched
// hashes but dominates per-packet message authentication (the ipsec
// OTP suite calls into this field once per 8 message bytes). Only
// valid for N == 64; other degrees panic.
func (f *Field) Mul64(a, b uint64) uint64 {
	if f.N != 64 {
		panic("gf2: Mul64 requires a degree-64 field")
	}
	// 64x64 -> 128 carry-less multiply: 4-bit windowed comb over b
	// against a stack table of the 16 nibble multiples of a.
	var tl, th [16]uint64
	tl[1] = a
	for v := 2; v < 16; v += 2 {
		tl[v] = tl[v/2] << 1
		th[v] = th[v/2]<<1 | tl[v/2]>>63
		tl[v+1] = tl[v] ^ a
		th[v+1] = th[v]
	}
	var lo, hi uint64
	for i := 60; i >= 0; i -= 4 {
		hi = hi<<4 | lo>>60
		lo <<= 4
		v := (b >> uint(i)) & 15
		lo ^= tl[v]
		hi ^= th[v]
	}
	// Fold the high word back through the sparse polynomial:
	// x^64 == sum of x^e over the non-leading exponents, so each pass
	// xors the overflow in at every offset; the few bits that overflow
	// again (shift > 0) go around once more until the carry clears.
	for hi != 0 {
		var carry uint64
		for _, o := range f.fold {
			lo ^= hi << o.shift
			if o.shift != 0 {
				carry ^= hi >> (64 - o.shift)
			}
		}
		hi = carry
	}
	return lo
}

// reduce folds a (up to) 2N-bit polynomial down modulo f: whole words
// above the boundary are cleared and xored back at the precomputed
// per-exponent offsets (x^(N+64i) == sum_e x^(64i+e)). All xors are
// word-aligned shifts by a constant per exponent — no per-bit work.
//
// The fold runs until no bit >= N remains ANYWHERE: with a large second
// exponent (wire-supplied polynomials reach FieldWithPoly with any
// strictly-descending exponent list) a single downward sweep can push
// bits back into words it already passed, so correctness for the
// Irreducible security check demands the outer loop. Honest sparse
// pentanomials (small middle exponents) converge in one sweep plus one
// verification scan.
func (f *Field) reduce(v []uint64) []uint64 {
	n := f.N
	// Ensure capacity for word-aligned folding.
	need := (2*n + 63) / 64
	for len(v) < need {
		v = append(v, 0)
	}
	for {
		if n&63 == 0 {
			// Aligned boundary: every source window is a whole word.
			top := n >> 6
			for i := len(v) - 1; i >= top; i-- {
				w := v[i]
				if w == 0 {
					continue
				}
				v[i] = 0
				base := i - top
				for _, fo := range f.fold {
					j := base + fo.word
					v[j] ^= w << fo.shift
					if fo.shift != 0 && j+1 < len(v) {
						v[j+1] ^= w >> (64 - fo.shift)
					}
				}
			}
		} else {
			// Misaligned boundary: whole stored words above it sit
			// 64 - n%64 bits past bit n, so fold targets carry that
			// constant displacement, precomputed in foldMis.
			top := n>>6 + 1
			for i := len(v) - 1; i >= top; i-- {
				w := v[i]
				if w == 0 {
					continue
				}
				v[i] = 0
				base := i - top
				for _, fo := range f.foldMis {
					j := base + fo.word
					v[j] ^= w << fo.shift
					if fo.shift != 0 && j+1 < len(v) {
						v[j+1] ^= w >> (64 - fo.shift)
					}
				}
			}
		}
		// Fold the straddling window [n, n+63] until clean.
		for {
			w := extractWord(v, n)
			if w == 0 {
				break
			}
			clearWord(v, n)
			for _, fo := range f.fold {
				v[fo.word] ^= w << fo.shift
				if fo.shift != 0 && fo.word+1 < len(v) {
					v[fo.word+1] ^= w >> (64 - fo.shift)
				}
			}
		}
		// Converged only when nothing above the boundary survived; each
		// fold strictly lowers the top degree, so this terminates.
		if topBit(v) < n {
			break
		}
	}
	out := make([]uint64, f.words)
	copy(out, v[:min(len(v), f.words)])
	if r := uint(n) & 63; r != 0 {
		out[f.words-1] &= (1 << r) - 1
	}
	return out
}

// One returns the multiplicative identity.
func (f *Field) One() []uint64 {
	e := make([]uint64, f.words)
	e[0] = 1
	return e
}

// X returns the element x.
func (f *Field) X() []uint64 {
	e := make([]uint64, f.words)
	if f.N == 1 {
		// x == f's root; degree-1 fields are never used but keep sane.
		e[0] = 1
		return e
	}
	e[0] = 2
	return e
}

// ---------------------------------------------------------------------
// Carry-less polynomial arithmetic on word slices
// ---------------------------------------------------------------------

// clmul computes the full carry-less product of a and b with a windowed
// comb: the carry-less multiples of b by every window-value polynomial
// are built once, then a is consumed one window position per pass —
// each pass shifts the accumulator left by the window width and xors in
// one word-aligned table row per nonzero window of a. The inner loops
// touch whole words only; the bit-serial shift-and-xor walk this
// replaces cost ~6x more word operations. Small operands use a 4-bit
// window (16-row table, builds in 15 shifted xors); once the xor passes
// dominate the table build, an 8-bit window halves the pass count.
func clmul(a, b []uint64) []uint64 {
	la, lb := len(a), len(b)
	out := make([]uint64, la+lb)
	if la == 0 || lb == 0 {
		return out
	}
	if la >= 32 && lb >= 32 {
		clmul8(out, a, b)
	} else {
		clmul4(out, a, b)
	}
	return out
}

// xorRow xors row into dst (len(dst) >= len(row)), 8-way unrolled: the
// comb spends nearly all its time here, and the unroll drops the cost
// per word from ~1.8 cycles to ~1.2 by amortizing loop overhead.
func xorRow(dst, row []uint64) {
	n := len(row)
	_ = dst[n-1]
	j := 0
	for ; j+8 <= n; j += 8 {
		dst[j] ^= row[j]
		dst[j+1] ^= row[j+1]
		dst[j+2] ^= row[j+2]
		dst[j+3] ^= row[j+3]
		dst[j+4] ^= row[j+4]
		dst[j+5] ^= row[j+5]
		dst[j+6] ^= row[j+6]
		dst[j+7] ^= row[j+7]
	}
	for ; j < n; j++ {
		dst[j] ^= row[j]
	}
}

// tabPool recycles comb tables; the 8-bit table for a 4096-bit operand
// is 130 KiB, and letting make() zero it on every multiply would cost
// more than the window saves. Pooled tables come back dirty, which is
// fine: every row the comb reads is fully rewritten by the build (row 0
// is never read — zero windows are skipped).
var tabPool = sync.Pool{}

func getTab(n int) []uint64 {
	if v := tabPool.Get(); v != nil {
		if t := v.(*[]uint64); cap(*t) >= n {
			return (*t)[:n]
		}
	}
	return make([]uint64, n)
}

func putTab(t []uint64) { tabPool.Put(&t) }

// clmul4 is the 4-bit windowed comb. Table rows are lb+1 words (window
// degree <= 3 spills into one extra word); row t holds t(x)*b(x), built
// incrementally: row t = row without t's lowest set bit, xor b shifted
// by that bit.
func clmul4(out, a, b []uint64) {
	lb := len(b)
	stride := lb + 1
	tab := make([]uint64, 16*stride)
	for t := 1; t < 16; t++ {
		low := t & -t
		prev := tab[(t^low)*stride:]
		row := tab[t*stride : t*stride+stride]
		sh := uint(bits.TrailingZeros64(uint64(low)))
		if sh == 0 {
			for j, w := range b {
				row[j] = prev[j] ^ w
			}
			row[lb] = prev[lb]
		} else {
			var carry uint64
			for j, w := range b {
				row[j] = prev[j] ^ (w<<sh | carry)
				carry = w >> (64 - sh)
			}
			row[lb] = prev[lb] ^ carry
		}
	}
	// Comb passes, highest window first: after the remaining passes'
	// shifts, window (i,k) of a lands at bit 64i+4k as required.
	for k := 15; k >= 0; k-- {
		if k != 15 {
			var carry uint64
			for j := range out {
				w := out[j]
				out[j] = w<<4 | carry
				carry = w >> 60
			}
		}
		for i, wa := range a {
			t := int(wa >> (uint(k) * 4) & 15)
			if t == 0 {
				continue
			}
			xorRow(out[i:], tab[t*stride:t*stride+stride])
		}
	}
}

// clmul8 is the 8-bit windowed comb: 8 passes instead of 16 at the cost
// of a 256-row table. The table builds in one pass of whole-word ops:
// even rows double (shift) the half-index row, odd rows xor b into
// their predecessor; every row is fully rewritten, so the pooled table
// needs no zeroing (row 1's spill word excepted).
func clmul8(out, a, b []uint64) {
	lb := len(b)
	stride := lb + 1
	tab := getTab(256 * stride)
	copy(tab[stride:], b)
	tab[stride+lb] = 0
	for t := 2; t < 256; t++ {
		row := tab[t*stride : t*stride+stride]
		if t&1 == 0 {
			src := tab[(t>>1)*stride : (t>>1)*stride+stride]
			var carry uint64
			for j, w := range src {
				row[j] = w<<1 | carry
				carry = w >> 63
			}
		} else {
			src := tab[(t-1)*stride : (t-1)*stride+stride]
			for j, w := range b {
				row[j] = src[j] ^ w
			}
			row[lb] = src[lb]
		}
	}
	for k := 7; k >= 0; k-- {
		if k != 7 {
			var carry uint64
			for j := range out {
				w := out[j]
				out[j] = w<<8 | carry
				carry = w >> 56
			}
		}
		for i, wa := range a {
			t := int(wa >> (uint(k) * 8) & 255)
			if t == 0 {
				continue
			}
			xorRow(out[i:], tab[t*stride:t*stride+stride])
		}
	}
	putTab(tab)
}

// extractWord reads the 64 bits starting at bit position pos.
func extractWord(v []uint64, pos int) uint64 {
	wordOff := pos / 64
	bitOff := uint(pos) % 64
	w := v[wordOff] >> bitOff
	if bitOff != 0 && wordOff+1 < len(v) {
		w |= v[wordOff+1] << (64 - bitOff)
	}
	return w
}

// clearWord zeroes the 64 bits starting at bit position pos.
func clearWord(v []uint64, pos int) {
	wordOff := pos / 64
	bitOff := uint(pos) % 64
	if bitOff == 0 {
		v[wordOff] = 0
		return
	}
	// Clear the high (64-bitOff) bits of this word and the low bitOff
	// bits of the next.
	v[wordOff] &= (1 << bitOff) - 1
	if wordOff+1 < len(v) {
		v[wordOff+1] &^= (1 << bitOff) - 1
	}
}

// spreadTab spreads byte bits into even positions of a 16-bit value.
var spreadTab [256]uint16

func init() {
	for i := 0; i < 256; i++ {
		var v uint16
		for b := 0; b < 8; b++ {
			if i>>b&1 == 1 {
				v |= 1 << (2 * b)
			}
		}
		spreadTab[i] = v
	}
}

// spread maps a polynomial to its square: bit i goes to bit 2i.
func spread(a []uint64) []uint64 {
	out := make([]uint64, 2*len(a))
	for i, w := range a {
		var lo, hi uint64
		for b := 0; b < 4; b++ {
			lo |= uint64(spreadTab[byte(w>>(8*b))]) << (16 * b)
			hi |= uint64(spreadTab[byte(w>>(8*(b+4)))]) << (16 * b)
		}
		out[2*i] = lo
		out[2*i+1] = hi
	}
	return out
}

// topBit returns the highest set bit position, or -1 for zero.
func topBit(v []uint64) int {
	for i := len(v) - 1; i >= 0; i-- {
		if v[i] != 0 {
			return 64*i + 63 - bits.LeadingZeros64(v[i])
		}
	}
	return -1
}

func flipBit(v []uint64, i int)  { v[i/64] ^= 1 << (uint(i) % 64) }
func clearBit(v []uint64, i int) { v[i/64] &^= 1 << (uint(i) % 64) }

// ---------------------------------------------------------------------
// Irreducibility (Rabin's test)
// ---------------------------------------------------------------------

// Irreducible reports whether the sparse polynomial with the given
// descending exponents is irreducible over GF(2), via Rabin's test:
// f of degree n is irreducible iff x^(2^n) == x (mod f) and, for every
// prime p dividing n, gcd(x^(2^(n/p)) - x, f) == 1.
func Irreducible(exps []int) bool {
	n := exps[0]
	if n == 1 {
		return true
	}
	f := newField(n, exps)

	checkAt := map[int]bool{}
	for _, p := range primeFactors(n) {
		checkAt[n/p] = true
	}

	cur := f.X() // x^(2^0)
	for i := 1; i <= n; i++ {
		cur = f.Square(cur) // x^(2^i)
		if checkAt[i] {
			h := make([]uint64, len(cur))
			copy(h, cur)
			flipBit(h, 1) // h = x^(2^i) - x
			if !coprime(h, exps) {
				return false
			}
		}
	}
	// x^(2^n) must equal x.
	want := f.X()
	for i := range cur {
		if cur[i] != want[i] {
			return false
		}
	}
	return true
}

// coprime reports gcd(h, f) == 1 where f is given by sparse exponents.
func coprime(h []uint64, exps []int) bool {
	// Materialize f densely.
	n := exps[0]
	fw := make([]uint64, n/64+1)
	for _, e := range exps {
		flipBit(fw, e)
	}
	g := polyGCD(fw, h)
	return topBit(g) == 0 // gcd == 1
}

// polyGCD computes the GCD of two GF(2) polynomials (destructive on
// copies).
func polyGCD(a, b []uint64) []uint64 {
	x := make([]uint64, len(a))
	copy(x, a)
	y := make([]uint64, len(b))
	copy(y, b)
	for {
		dy := topBit(y)
		if dy < 0 {
			return x
		}
		dx := topBit(x)
		if dx < dy {
			x, y = y, x
			continue
		}
		// x ^= y << (dx - dy); repeat until deg(x) < deg(y).
		for dx >= dy && dx >= 0 {
			xorShiftInto(x, y, dx-dy)
			dx = topBit(x)
		}
		x, y = y, x
	}
}

// xorShiftInto xors src<<shift into dst, ignoring overflow beyond dst
// (callers guarantee deg fits).
func xorShiftInto(dst, src []uint64, shift int) {
	wordOff := shift / 64
	bitOff := uint(shift) % 64
	for i, w := range src {
		if w == 0 {
			continue
		}
		if wordOff+i < len(dst) {
			dst[wordOff+i] ^= w << bitOff
		}
		if bitOff != 0 && wordOff+i+1 < len(dst) {
			dst[wordOff+i+1] ^= w >> (64 - bitOff)
		}
	}
}

// primeFactors returns the distinct prime factors of n.
func primeFactors(n int) []int {
	var out []int
	for p := 2; p*p <= n; p++ {
		if n%p == 0 {
			out = append(out, p)
			for n%p == 0 {
				n /= p
			}
		}
	}
	if n > 1 {
		out = append(out, n)
	}
	return out
}

// findIrreducible searches for a sparse irreducible polynomial of
// degree n: first trinomials x^n+x^k+1 (they do not exist when 8 | n,
// but the search is cheap and keeps the function general), then
// pentanomials with small middle exponents.
func findIrreducible(n int) ([]int, error) {
	if n%8 != 0 {
		for k := 1; k < n; k++ {
			exps := []int{n, k, 0}
			if Irreducible(exps) {
				return exps, nil
			}
		}
	}
	limit := n - 1
	if limit > 96 {
		limit = 96
	}
	for a := 3; a <= limit; a++ {
		for b := 2; b < a; b++ {
			for c := 1; c < b; c++ {
				exps := []int{n, a, b, c, 0}
				if Irreducible(exps) {
					return exps, nil
				}
			}
		}
	}
	return nil, fmt.Errorf("gf2: no sparse irreducible polynomial found for degree %d", n)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
