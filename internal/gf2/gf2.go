// Package gf2 implements arithmetic in the binary fields GF(2^n) that
// privacy amplification hashes over. The paper's protocol transmits
// "the (sparse) primitive polynomial of the Galois field, a multiplier
// (n bits long), and an m-bit polynomial to add", with n the number of
// input bits rounded up to a multiple of 32.
//
// Because n varies per privacy-amplification batch, the package finds a
// sparse irreducible polynomial of the required degree at runtime: a
// pentanomial x^n + x^a + x^b + x^c + 1 with small middle exponents
// (degrees that are multiples of 32 are multiples of 8, and no
// irreducible trinomials exist for those degrees). Candidates are
// verified with Rabin's irreducibility test; results are cached per
// degree. Universality of the hash needs a field — irreducibility
// suffices; primitivity would only matter for maximal element order,
// which the hash does not rely on.
//
// Elements are bit vectors packed LSB-first into []uint64 words,
// compatible with package bitarray's layout.
package gf2

import (
	"fmt"
	"math/bits"
	"sync"
)

// Field is GF(2)[x] / (f) for a sparse irreducible f of degree N.
type Field struct {
	// N is the extension degree.
	N int
	// exps are the exponents of f in descending order, starting with N
	// and ending with 0, e.g. {128, 7, 2, 1, 0}.
	exps []int
	// words is len of an element in 64-bit words.
	words int
}

// fieldCache memoizes the (expensive) polynomial search per degree.
var fieldCache sync.Map // int -> *Field

// knownPolys lists sparse irreducible pentanomials for common degrees,
// found by this package's own search (findIrreducible) and re-verified
// by TestKnownPolyTable. The table short-circuits the runtime search
// for the degrees privacy amplification typically uses.
var knownPolys = map[int][]int{
	32:   {32, 7, 3, 2, 0},
	64:   {64, 4, 3, 1, 0},
	96:   {96, 10, 9, 6, 0},
	128:  {128, 7, 2, 1, 0},
	160:  {160, 5, 3, 2, 0},
	192:  {192, 7, 2, 1, 0},
	224:  {224, 9, 8, 3, 0},
	256:  {256, 10, 5, 2, 0},
	288:  {288, 11, 10, 1, 0},
	320:  {320, 4, 3, 1, 0},
	384:  {384, 12, 3, 2, 0},
	448:  {448, 11, 6, 4, 0},
	512:  {512, 8, 5, 2, 0},
	640:  {640, 14, 3, 2, 0},
	768:  {768, 19, 17, 4, 0},
	896:  {896, 7, 5, 3, 0},
	1024: {1024, 19, 6, 1, 0},
	1280: {1280, 12, 7, 5, 0},
	1536: {1536, 21, 6, 2, 0},
	2048: {2048, 19, 14, 13, 0},
	3072: {3072, 11, 10, 5, 0},
	4096: {4096, 27, 15, 1, 0},
	8192: {8192, 9, 5, 2, 0},
}

// NewField returns a field of degree n, locating (and caching) a sparse
// irreducible polynomial. n must be positive and a multiple of 32, per
// the paper's rounding rule.
func NewField(n int) (*Field, error) {
	if n <= 0 || n%32 != 0 {
		return nil, fmt.Errorf("gf2: degree %d must be a positive multiple of 32", n)
	}
	if f, ok := fieldCache.Load(n); ok {
		return f.(*Field), nil
	}
	exps, ok := knownPolys[n]
	if !ok {
		var err error
		exps, err = findIrreducible(n)
		if err != nil {
			return nil, err
		}
	}
	f := &Field{N: n, exps: exps, words: (n + 63) / 64}
	fieldCache.Store(n, f)
	return f, nil
}

// verifiedPolys memoizes Irreducible verdicts by exponent list. The
// receiving side of privacy amplification validates its peer's
// polynomial on every batch; with fixed-size batches the polynomial
// repeats, and re-running Rabin's test (n squarings in GF(2^n)) per
// batch would dominate the whole distillation pipeline. The cache is
// bounded: polynomials arrive from the network, and an adversary
// proposing a fresh one per batch must not grow process memory — past
// the cap every new polynomial just pays for its own Rabin test.
// Honest links cycle a handful of polynomials, one per degree.
var verifiedPolys struct {
	sync.Mutex
	m map[string]bool
}

const verifiedPolysCap = 256

// FieldWithPoly builds a field from explicit exponents (descending,
// ending in 0), verifying irreducibility. The receiving side of privacy
// amplification uses this to validate the polynomial its peer proposed
// — accepting a reducible polynomial would break the hash family's
// universality, so validation is a security check, not pedantry.
// Verdicts are memoized, so only the first sighting of a polynomial
// pays for Rabin's test.
func FieldWithPoly(exps []int) (*Field, error) {
	if len(exps) < 2 || exps[len(exps)-1] != 0 {
		return nil, fmt.Errorf("gf2: polynomial must include x^n and 1")
	}
	for i := 1; i < len(exps); i++ {
		if exps[i] >= exps[i-1] {
			return nil, fmt.Errorf("gf2: exponents must be strictly descending")
		}
	}
	n := exps[0]
	if n <= 0 {
		return nil, fmt.Errorf("gf2: degree %d must be positive", n)
	}
	key := fmt.Sprint(exps)
	verifiedPolys.Lock()
	irr, seen := verifiedPolys.m[key]
	verifiedPolys.Unlock()
	if !seen {
		irr = Irreducible(exps)
		verifiedPolys.Lock()
		if verifiedPolys.m == nil {
			verifiedPolys.m = make(map[string]bool)
		}
		if len(verifiedPolys.m) < verifiedPolysCap {
			verifiedPolys.m[key] = irr
		}
		verifiedPolys.Unlock()
	}
	if !irr {
		return nil, fmt.Errorf("gf2: polynomial of degree %d is reducible", n)
	}
	exps = append([]int(nil), exps...) // callers may reuse their slice
	return &Field{N: n, exps: exps, words: (n + 63) / 64}, nil
}

// Poly returns the field polynomial's exponents (descending, a copy).
func (f *Field) Poly() []int {
	out := make([]int, len(f.exps))
	copy(out, f.exps)
	return out
}

// Words returns the element size in 64-bit words.
func (f *Field) Words() int { return f.words }

// Mul returns a*b in the field. Inputs must be f.Words() words with
// bits above N zero; the result has the same shape.
func (f *Field) Mul(a, b []uint64) []uint64 {
	prod := clmul(a, b)
	return f.reduce(prod)
}

// Square returns a^2 in the field, in O(n) time (squaring is linear
// over GF(2)).
func (f *Field) Square(a []uint64) []uint64 {
	sq := spread(a)
	return f.reduce(sq)
}

// reduce folds a (up to) 2N-bit polynomial down modulo f using the
// sparse exponent list: x^(N+i) = sum over non-leading exponents e of
// x^(i+e).
func (f *Field) reduce(v []uint64) []uint64 {
	n := f.N
	// Ensure capacity for word-aligned folding.
	need := (2*n + 63) / 64
	for len(v) < need {
		v = append(v, 0)
	}
	// Fold from the top word down. Bits >= n live in word region
	// starting at bit n.
	for bit := 2*n - 64; bit >= n; bit -= 64 {
		w := extractWord(v, bit)
		if w == 0 {
			continue
		}
		clearWord(v, bit)
		for _, e := range f.exps[1:] {
			xorWord(v, w, bit-n+e)
		}
	}
	// Final partial fold for bits [n, n+63] that may have been
	// re-populated by the word fold above (when exponent offsets push
	// bits back over the boundary) — handle bit by bit.
	for {
		d := topBit(v)
		if d < n {
			break
		}
		clearBit(v, d)
		for _, e := range f.exps[1:] {
			flipBit(v, d-n+e)
		}
	}
	out := make([]uint64, f.words)
	copy(out, v[:min(len(v), f.words)])
	if r := uint(n) & 63; r != 0 {
		out[f.words-1] &= (1 << r) - 1
	}
	return out
}

// One returns the multiplicative identity.
func (f *Field) One() []uint64 {
	e := make([]uint64, f.words)
	e[0] = 1
	return e
}

// X returns the element x.
func (f *Field) X() []uint64 {
	e := make([]uint64, f.words)
	if f.N == 1 {
		// x == f's root; degree-1 fields are never used but keep sane.
		e[0] = 1
		return e
	}
	e[0] = 2
	return e
}

// ---------------------------------------------------------------------
// Carry-less polynomial arithmetic on word slices
// ---------------------------------------------------------------------

// clmul computes the full carry-less product of a and b.
func clmul(a, b []uint64) []uint64 {
	out := make([]uint64, len(a)+len(b))
	for i, wa := range a {
		if wa == 0 {
			continue
		}
		for wa != 0 {
			bit := bits.TrailingZeros64(wa)
			wa &= wa - 1
			xorShift(out, b, 64*i+bit)
		}
	}
	return out
}

// xorShift xors src<<shift into dst (dst must be long enough).
func xorShift(dst, src []uint64, shift int) {
	wordOff := shift / 64
	bitOff := uint(shift) % 64
	if bitOff == 0 {
		for i, w := range src {
			dst[wordOff+i] ^= w
		}
		return
	}
	var carry uint64
	for i, w := range src {
		dst[wordOff+i] ^= (w << bitOff) | carry
		carry = w >> (64 - bitOff)
	}
	if carry != 0 {
		dst[wordOff+len(src)] ^= carry
	}
}

// xorWord xors the single word w shifted to bit position pos into v.
func xorWord(v []uint64, w uint64, pos int) {
	wordOff := pos / 64
	bitOff := uint(pos) % 64
	v[wordOff] ^= w << bitOff
	if bitOff != 0 && wordOff+1 < len(v) {
		v[wordOff+1] ^= w >> (64 - bitOff)
	}
}

// extractWord reads the 64 bits starting at bit position pos.
func extractWord(v []uint64, pos int) uint64 {
	wordOff := pos / 64
	bitOff := uint(pos) % 64
	w := v[wordOff] >> bitOff
	if bitOff != 0 && wordOff+1 < len(v) {
		w |= v[wordOff+1] << (64 - bitOff)
	}
	return w
}

// clearWord zeroes the 64 bits starting at bit position pos.
func clearWord(v []uint64, pos int) {
	wordOff := pos / 64
	bitOff := uint(pos) % 64
	if bitOff == 0 {
		v[wordOff] = 0
		return
	}
	// Clear the high (64-bitOff) bits of this word and the low bitOff
	// bits of the next.
	v[wordOff] &= (1 << bitOff) - 1
	if wordOff+1 < len(v) {
		v[wordOff+1] &^= (1 << bitOff) - 1
	}
}

// spreadTab spreads byte bits into even positions of a 16-bit value.
var spreadTab [256]uint16

func init() {
	for i := 0; i < 256; i++ {
		var v uint16
		for b := 0; b < 8; b++ {
			if i>>b&1 == 1 {
				v |= 1 << (2 * b)
			}
		}
		spreadTab[i] = v
	}
}

// spread maps a polynomial to its square: bit i goes to bit 2i.
func spread(a []uint64) []uint64 {
	out := make([]uint64, 2*len(a))
	for i, w := range a {
		var lo, hi uint64
		for b := 0; b < 4; b++ {
			lo |= uint64(spreadTab[byte(w>>(8*b))]) << (16 * b)
			hi |= uint64(spreadTab[byte(w>>(8*(b+4)))]) << (16 * b)
		}
		out[2*i] = lo
		out[2*i+1] = hi
	}
	return out
}

// topBit returns the highest set bit position, or -1 for zero.
func topBit(v []uint64) int {
	for i := len(v) - 1; i >= 0; i-- {
		if v[i] != 0 {
			return 64*i + 63 - bits.LeadingZeros64(v[i])
		}
	}
	return -1
}

func flipBit(v []uint64, i int)  { v[i/64] ^= 1 << (uint(i) % 64) }
func clearBit(v []uint64, i int) { v[i/64] &^= 1 << (uint(i) % 64) }

// ---------------------------------------------------------------------
// Irreducibility (Rabin's test)
// ---------------------------------------------------------------------

// Irreducible reports whether the sparse polynomial with the given
// descending exponents is irreducible over GF(2), via Rabin's test:
// f of degree n is irreducible iff x^(2^n) == x (mod f) and, for every
// prime p dividing n, gcd(x^(2^(n/p)) - x, f) == 1.
func Irreducible(exps []int) bool {
	n := exps[0]
	if n == 1 {
		return true
	}
	f := &Field{N: n, exps: exps, words: (n + 63) / 64}

	checkAt := map[int]bool{}
	for _, p := range primeFactors(n) {
		checkAt[n/p] = true
	}

	cur := f.X() // x^(2^0)
	for i := 1; i <= n; i++ {
		cur = f.Square(cur) // x^(2^i)
		if checkAt[i] {
			h := make([]uint64, len(cur))
			copy(h, cur)
			flipBit(h, 1) // h = x^(2^i) - x
			if !coprime(h, exps) {
				return false
			}
		}
	}
	// x^(2^n) must equal x.
	want := f.X()
	for i := range cur {
		if cur[i] != want[i] {
			return false
		}
	}
	return true
}

// coprime reports gcd(h, f) == 1 where f is given by sparse exponents.
func coprime(h []uint64, exps []int) bool {
	// Materialize f densely.
	n := exps[0]
	fw := make([]uint64, n/64+1)
	for _, e := range exps {
		flipBit(fw, e)
	}
	g := polyGCD(fw, h)
	return topBit(g) == 0 // gcd == 1
}

// polyGCD computes the GCD of two GF(2) polynomials (destructive on
// copies).
func polyGCD(a, b []uint64) []uint64 {
	x := make([]uint64, len(a))
	copy(x, a)
	y := make([]uint64, len(b))
	copy(y, b)
	for {
		dy := topBit(y)
		if dy < 0 {
			return x
		}
		dx := topBit(x)
		if dx < dy {
			x, y = y, x
			continue
		}
		// x ^= y << (dx - dy); repeat until deg(x) < deg(y).
		for dx >= dy && dx >= 0 {
			xorShiftInto(x, y, dx-dy)
			dx = topBit(x)
		}
		x, y = y, x
	}
}

// xorShiftInto xors src<<shift into dst, ignoring overflow beyond dst
// (callers guarantee deg fits).
func xorShiftInto(dst, src []uint64, shift int) {
	wordOff := shift / 64
	bitOff := uint(shift) % 64
	for i, w := range src {
		if w == 0 {
			continue
		}
		if wordOff+i < len(dst) {
			dst[wordOff+i] ^= w << bitOff
		}
		if bitOff != 0 && wordOff+i+1 < len(dst) {
			dst[wordOff+i+1] ^= w >> (64 - bitOff)
		}
	}
}

// primeFactors returns the distinct prime factors of n.
func primeFactors(n int) []int {
	var out []int
	for p := 2; p*p <= n; p++ {
		if n%p == 0 {
			out = append(out, p)
			for n%p == 0 {
				n /= p
			}
		}
	}
	if n > 1 {
		out = append(out, n)
	}
	return out
}

// findIrreducible searches for a sparse irreducible polynomial of
// degree n: first trinomials x^n+x^k+1 (they do not exist when 8 | n,
// but the search is cheap and keeps the function general), then
// pentanomials with small middle exponents.
func findIrreducible(n int) ([]int, error) {
	if n%8 != 0 {
		for k := 1; k < n; k++ {
			exps := []int{n, k, 0}
			if Irreducible(exps) {
				return exps, nil
			}
		}
	}
	limit := n - 1
	if limit > 96 {
		limit = 96
	}
	for a := 3; a <= limit; a++ {
		for b := 2; b < a; b++ {
			for c := 1; c < b; c++ {
				exps := []int{n, a, b, c, 0}
				if Irreducible(exps) {
					return exps, nil
				}
			}
		}
	}
	return nil, fmt.Errorf("gf2: no sparse irreducible polynomial found for degree %d", n)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
