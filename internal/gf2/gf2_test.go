package gf2

import (
	"testing"
	"testing/quick"

	"qkd/internal/rng"
)

// Known irreducible polynomials over GF(2) for validation.
var knownIrreducible = [][]int{
	{2, 1, 0},         // x^2+x+1
	{3, 1, 0},         // x^3+x+1
	{8, 4, 3, 1, 0},   // AES polynomial
	{16, 5, 3, 1, 0},  //
	{32, 7, 3, 2, 0},  //
	{64, 4, 3, 1, 0},  //
	{128, 7, 2, 1, 0}, // GCM polynomial
}

var knownReducible = [][]int{
	{2, 0},        // x^2+1 = (x+1)^2
	{4, 0},        // x^4+1
	{8, 1, 0},     // x^8+x+1 is reducible
	{16, 2, 1, 0}, // even number of terms over GF(2) has root 1? x^16+x^2+x+1 at x=1: 1+1+1+1=0 -> divisible by x+1
}

func TestIrreducibleKnownPolys(t *testing.T) {
	for _, exps := range knownIrreducible {
		if !Irreducible(exps) {
			t.Errorf("known irreducible %v reported reducible", exps)
		}
	}
	for _, exps := range knownReducible {
		if Irreducible(exps) {
			t.Errorf("known reducible %v reported irreducible", exps)
		}
	}
}

func TestNewFieldDegrees(t *testing.T) {
	for _, n := range []int{32, 64, 96, 128, 160, 1024} {
		f, err := NewField(n)
		if err != nil {
			t.Fatalf("NewField(%d): %v", n, err)
		}
		if f.N != n {
			t.Errorf("N = %d", f.N)
		}
		poly := f.Poly()
		if poly[0] != n || poly[len(poly)-1] != 0 {
			t.Errorf("NewField(%d) poly %v malformed", n, poly)
		}
		if !Irreducible(poly) {
			t.Errorf("NewField(%d) returned reducible %v", n, poly)
		}
	}
}

func TestNewFieldRejectsBadDegrees(t *testing.T) {
	for _, n := range []int{0, -32, 33, 31, 100} {
		if _, err := NewField(n); err == nil {
			t.Errorf("NewField(%d) accepted", n)
		}
	}
}

func TestNewFieldCached(t *testing.T) {
	a, err := NewField(64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewField(64)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("field not cached")
	}
}

func TestFieldWithPolyValidates(t *testing.T) {
	if _, err := FieldWithPoly([]int{8, 4, 3, 1, 0}); err != nil {
		t.Errorf("valid poly rejected: %v", err)
	}
	bad := [][]int{
		{8, 1, 0},    // reducible
		{8, 4, 4, 0}, // not descending
		{8, 4},       // missing constant term
		{},           // empty
	}
	for _, exps := range bad {
		if _, err := FieldWithPoly(exps); err == nil {
			t.Errorf("bad poly %v accepted", exps)
		}
	}
}

// mulNaive is a reference multiplication using bit-at-a-time reduction.
func mulNaive(f *Field, a, b []uint64) []uint64 {
	n := f.N
	acc := make([]uint64, f.Words()+1)
	cur := make([]uint64, f.Words()+1)
	copy(cur, a)
	for i := 0; i < n; i++ {
		if b[i/64]>>(uint(i)%64)&1 == 1 {
			for j := range acc {
				acc[j] ^= cur[j]
			}
		}
		// cur <<= 1 mod f
		carry := uint64(0)
		for j := range cur {
			next := cur[j] >> 63
			cur[j] = cur[j]<<1 | carry
			carry = next
		}
		if cur[n/64]>>(uint(n)%64)&1 == 1 || (n%64 == 0 && carry == 1) {
			// subtract f
			if n%64 == 0 {
				// bit n is the carry
			}
			clearBit(cur, n)
			for _, e := range f.exps[1:] {
				flipBit(cur, e)
			}
		}
	}
	out := make([]uint64, f.Words())
	copy(out, acc[:f.Words()])
	if r := uint(n) & 63; r != 0 {
		out[f.Words()-1] &= (1 << r) - 1
	}
	return out
}

func randElem(f *Field, r *rng.SplitMix64) []uint64 {
	e := make([]uint64, f.Words())
	for i := range e {
		e[i] = r.Uint64()
	}
	if rem := uint(f.N) & 63; rem != 0 {
		e[f.Words()-1] &= (1 << rem) - 1
	}
	return e
}

func eq(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestMulMatchesNaive(t *testing.T) {
	r := rng.NewSplitMix64(1)
	for _, n := range []int{32, 64, 96, 128} {
		f, err := NewField(n)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 20; trial++ {
			a := randElem(f, r)
			b := randElem(f, r)
			got := f.Mul(a, b)
			want := mulNaive(f, a, b)
			if !eq(got, want) {
				t.Fatalf("n=%d trial %d: Mul mismatch\n got %x\nwant %x", n, trial, got, want)
			}
		}
	}
}

func TestMulIdentity(t *testing.T) {
	f, _ := NewField(128)
	r := rng.NewSplitMix64(2)
	one := f.One()
	for i := 0; i < 10; i++ {
		a := randElem(f, r)
		if !eq(f.Mul(a, one), a) {
			t.Fatal("a*1 != a")
		}
	}
}

func TestMulCommutativeAssociativeDistributive(t *testing.T) {
	f, _ := NewField(96)
	r := rng.NewSplitMix64(3)
	for i := 0; i < 10; i++ {
		a, b, c := randElem(f, r), randElem(f, r), randElem(f, r)
		if !eq(f.Mul(a, b), f.Mul(b, a)) {
			t.Fatal("not commutative")
		}
		if !eq(f.Mul(f.Mul(a, b), c), f.Mul(a, f.Mul(b, c))) {
			t.Fatal("not associative")
		}
		// a*(b+c) == a*b + a*c
		bc := make([]uint64, len(b))
		for j := range b {
			bc[j] = b[j] ^ c[j]
		}
		lhs := f.Mul(a, bc)
		ab := f.Mul(a, b)
		ac := f.Mul(a, c)
		rhs := make([]uint64, len(ab))
		for j := range ab {
			rhs[j] = ab[j] ^ ac[j]
		}
		if !eq(lhs, rhs) {
			t.Fatal("not distributive")
		}
	}
}

func TestSquareMatchesMul(t *testing.T) {
	r := rng.NewSplitMix64(4)
	for _, n := range []int{32, 64, 160, 1024} {
		f, err := NewField(n)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			a := randElem(f, r)
			if !eq(f.Square(a), f.Mul(a, a)) {
				t.Fatalf("n=%d: Square != Mul(a,a)", n)
			}
		}
	}
}

func TestFermat(t *testing.T) {
	// In GF(2^n), a^(2^n) == a for all a.
	f, _ := NewField(64)
	r := rng.NewSplitMix64(5)
	for i := 0; i < 5; i++ {
		a := randElem(f, r)
		cur := a
		for j := 0; j < f.N; j++ {
			cur = f.Square(cur)
		}
		if !eq(cur, a) {
			t.Fatal("a^(2^n) != a — the polynomial is not of degree n or reduction is broken")
		}
	}
}

func TestNoZeroDivisors(t *testing.T) {
	// A field has no zero divisors: a,b nonzero => a*b nonzero.
	f, _ := NewField(32)
	r := rng.NewSplitMix64(6)
	zero := make([]uint64, f.Words())
	for i := 0; i < 200; i++ {
		a, b := randElem(f, r), randElem(f, r)
		if eq(a, zero) || eq(b, zero) {
			continue
		}
		if eq(f.Mul(a, b), zero) {
			t.Fatalf("zero divisor found: %x * %x", a, b)
		}
	}
}

// Property: (a*b)*c == a*(b*c) for random 64-bit field elements.
func TestPropertyAssociativity64(t *testing.T) {
	f, _ := NewField(64)
	g := func(x, y, z uint64) bool {
		a, b, c := []uint64{x}, []uint64{y}, []uint64{z}
		return eq(f.Mul(f.Mul(a, b), c), f.Mul(a, f.Mul(b, c)))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestPrimeFactors(t *testing.T) {
	cases := map[int][]int{
		32:   {2},
		96:   {2, 3},
		1024: {2},
		160:  {2, 5},
		1056: {2, 3, 11},
	}
	for n, want := range cases {
		got := primeFactors(n)
		if len(got) != len(want) {
			t.Errorf("primeFactors(%d) = %v, want %v", n, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("primeFactors(%d) = %v, want %v", n, got, want)
			}
		}
	}
}

func BenchmarkMul1024(b *testing.B) {
	f, err := NewField(1024)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.NewSplitMix64(1)
	x := randElem(f, r)
	y := randElem(f, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Mul(x, y)
	}
}

func BenchmarkMul4096(b *testing.B) {
	f, err := NewField(4096)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.NewSplitMix64(1)
	x := randElem(f, r)
	y := randElem(f, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Mul(x, y)
	}
}

func BenchmarkFieldSearch2048(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fieldCache.Delete(2048)
		if _, err := NewField(2048); err != nil {
			b.Fatal(err)
		}
	}
}

func TestKnownPolyTable(t *testing.T) {
	// Every table entry must be well-formed and genuinely irreducible
	// (the table is a cache of findIrreducible results, so this guards
	// against typos corrupting the fast path).
	if testing.Short() {
		t.Skip("short mode")
	}
	for n, exps := range knownPolys {
		if n > 1024 {
			continue // the big ones take seconds each; spot-checked below
		}
		if exps[0] != n || exps[len(exps)-1] != 0 {
			t.Errorf("table entry %d malformed: %v", n, exps)
			continue
		}
		if !Irreducible(exps) {
			t.Errorf("table entry %d is reducible: %v", n, exps)
		}
	}
	if !Irreducible(knownPolys[2048]) {
		t.Error("table entry 2048 is reducible")
	}
}

func TestMul64MatchesMul(t *testing.T) {
	f, err := NewField(64)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ a, b uint64 }{
		{0, 0}, {1, 1}, {1, ^uint64(0)}, {^uint64(0), ^uint64(0)},
		{1 << 63, 2}, {1 << 63, 1 << 63}, {0x10, 0x123456789abcdef0},
	}
	r := rng.NewSplitMix64(0x64646464)
	for i := 0; i < 2000; i++ {
		cases = append(cases, struct{ a, b uint64 }{r.Uint64(), r.Uint64()})
	}
	for _, c := range cases {
		want := f.Mul([]uint64{c.a}, []uint64{c.b})[0]
		if got := f.Mul64(c.a, c.b); got != want {
			t.Fatalf("Mul64(%#x, %#x) = %#x, Mul says %#x", c.a, c.b, got, want)
		}
	}
}

func TestMul64RequiresDegree64(t *testing.T) {
	f, err := NewField(128)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Mul64 on a degree-128 field should panic")
		}
	}()
	f.Mul64(1, 1)
}

func BenchmarkMul64(b *testing.B) {
	f, _ := NewField(64)
	r := rng.NewSplitMix64(1)
	x, y := r.Uint64(), r.Uint64()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x = f.Mul64(x, y)
	}
	sinkUint64 = x
}

var sinkUint64 uint64
