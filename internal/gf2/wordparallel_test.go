package gf2

import (
	"math/bits"
	"sort"
	"testing"

	"qkd/internal/rng"
)

// Reference implementations: the original bit-serial carry-less
// multiply and per-bit tail reduction this package shipped before the
// windowed-comb rewrite. The fast paths must match them bit for bit at
// every degree in the knownPolys table.

// clmulBitSerial is the original shift-and-xor product.
func clmulBitSerial(a, b []uint64) []uint64 {
	out := make([]uint64, len(a)+len(b))
	for i, wa := range a {
		for wa != 0 {
			bit := bits.TrailingZeros64(wa)
			wa &= wa - 1
			xorShiftRef(out, b, 64*i+bit)
		}
	}
	return out
}

func xorShiftRef(dst, src []uint64, shift int) {
	wordOff := shift / 64
	bitOff := uint(shift) % 64
	if bitOff == 0 {
		for i, w := range src {
			dst[wordOff+i] ^= w
		}
		return
	}
	var carry uint64
	for i, w := range src {
		dst[wordOff+i] ^= (w << bitOff) | carry
		carry = w >> (64 - bitOff)
	}
	if carry != 0 {
		dst[wordOff+len(src)] ^= carry
	}
}

func xorWordRef(v []uint64, w uint64, pos int) {
	wordOff := pos / 64
	bitOff := uint(pos) % 64
	v[wordOff] ^= w << bitOff
	if bitOff != 0 && wordOff+1 < len(v) {
		v[wordOff+1] ^= w >> (64 - bitOff)
	}
}

// reduceBitSerial is the original fold: whole words via xorWordRef with
// runtime offset splits, then a per-bit topBit tail.
func reduceBitSerial(f *Field, v []uint64) []uint64 {
	n := f.N
	need := (2*n + 63) / 64
	if need < len(v) {
		need = len(v)
	}
	w := make([]uint64, len(v), need)
	copy(w, v)
	v = w
	for len(v) < need {
		v = append(v, 0)
	}
	for bit := 2*n - 64; bit >= n; bit -= 64 {
		w := extractWord(v, bit)
		if w == 0 {
			continue
		}
		clearWord(v, bit)
		for _, e := range f.exps[1:] {
			xorWordRef(v, w, bit-n+e)
		}
	}
	for {
		d := topBit(v)
		if d < n {
			break
		}
		clearBit(v, d)
		for _, e := range f.exps[1:] {
			flipBit(v, d-n+e)
		}
	}
	out := make([]uint64, f.words)
	copy(out, v[:min(len(v), f.words)])
	if r := uint(n) & 63; r != 0 {
		out[f.words-1] &= (1 << r) - 1
	}
	return out
}

// knownDegrees returns the knownPolys degrees sorted ascending.
func knownDegrees() []int {
	ds := make([]int, 0, len(knownPolys))
	for n := range knownPolys {
		ds = append(ds, n)
	}
	sort.Ints(ds)
	return ds
}

// TestClmulMatchesBitSerial cross-checks the windowed comb against the
// bit-serial product over randomized inputs at every table degree.
func TestClmulMatchesBitSerial(t *testing.T) {
	r := rng.NewSplitMix64(0xC0DE)
	for _, n := range knownDegrees() {
		f, err := NewField(n)
		if err != nil {
			t.Fatalf("NewField(%d): %v", n, err)
		}
		trials := 8
		if n > 2048 {
			trials = 3
		}
		for trial := 0; trial < trials; trial++ {
			a := randElem(f, r)
			b := randElem(f, r)
			got := clmul(a, b)
			want := clmulBitSerial(a, b)
			if !eq(got, want) {
				t.Fatalf("n=%d trial %d: clmul mismatch", n, trial)
			}
		}
	}
}

// TestReduceMatchesBitSerial cross-checks the precomputed shift-fold
// against the original reduction on full-width products, including the
// unaligned (n %% 64 == 32) boundary degrees.
func TestReduceMatchesBitSerial(t *testing.T) {
	r := rng.NewSplitMix64(0xF01D)
	for _, n := range knownDegrees() {
		f, err := NewField(n)
		if err != nil {
			t.Fatalf("NewField(%d): %v", n, err)
		}
		trials := 8
		if n > 2048 {
			trials = 3
		}
		for trial := 0; trial < trials; trial++ {
			// A full product (all 2n bits potentially set) stresses every
			// fold window.
			prod := make([]uint64, (2*n+63)/64)
			for i := range prod {
				prod[i] = r.Uint64()
			}
			if rem := uint(2*n) & 63; rem != 0 {
				prod[len(prod)-1] &= (1 << rem) - 1
			}
			want := reduceBitSerial(f, prod)
			got := f.reduce(append([]uint64(nil), prod...))
			if !eq(got, want) {
				t.Fatalf("n=%d trial %d: reduce mismatch", n, trial)
			}
		}
	}
}

// TestMulMatchesBitSerialComposition pins the composed fast Mul against
// the composed bit-serial pipeline at every table degree.
func TestMulMatchesBitSerialComposition(t *testing.T) {
	r := rng.NewSplitMix64(0xA11CE)
	for _, n := range knownDegrees() {
		if testing.Short() && n > 1024 {
			continue
		}
		f, err := NewField(n)
		if err != nil {
			t.Fatalf("NewField(%d): %v", n, err)
		}
		a := randElem(f, r)
		b := randElem(f, r)
		got := f.Mul(a, b)
		want := reduceBitSerial(f, clmulBitSerial(a, b))
		if !eq(got, want) {
			t.Fatalf("n=%d: Mul mismatch vs bit-serial pipeline", n)
		}
	}
}

// TestSquareMatchesBitSerial checks Square (spread + fast reduce)
// against the bit-serial reduction of the spread.
func TestSquareMatchesBitSerial(t *testing.T) {
	r := rng.NewSplitMix64(0x50AEE)
	for _, n := range []int{32, 64, 96, 160, 1024, 4096} {
		f, err := NewField(n)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 5; trial++ {
			a := randElem(f, r)
			got := f.Square(a)
			want := reduceBitSerial(f, spread(a))
			if !eq(got, want) {
				t.Fatalf("n=%d: Square mismatch", n)
			}
		}
	}
}

// TestFieldWithPolyPackedKeyCache ensures the packed key distinguishes
// polynomials that fmt-style keys did, and that uncacheable lists still
// validate correctly.
func TestFieldWithPolyPackedKeyCache(t *testing.T) {
	// Two different valid polynomials of the same degree must not alias.
	if _, err := FieldWithPoly([]int{32, 7, 3, 2, 0}); err != nil {
		t.Fatalf("first poly: %v", err)
	}
	if _, err := FieldWithPoly([]int{32, 8, 3, 2, 0}); err == nil {
		// x^32+x^8+x^3+x^2+1: verify against Irreducible directly — the
		// cache must agree with a fresh test either way.
		if Irreducible([]int{32, 8, 3, 2, 0}) != true {
			t.Error("cache returned irreducible for a reducible polynomial")
		}
	} else if Irreducible([]int{32, 8, 3, 2, 0}) {
		t.Error("cache rejected an irreducible polynomial")
	}
	// Repeated lookups hit the cache and stay consistent.
	for i := 0; i < 3; i++ {
		if _, err := FieldWithPoly([]int{128, 7, 2, 1, 0}); err != nil {
			t.Fatalf("cached lookup %d: %v", i, err)
		}
	}
}

func BenchmarkSquare4096(b *testing.B) {
	f, err := NewField(4096)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.NewSplitMix64(1)
	x := randElem(f, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Square(x)
	}
}

func BenchmarkIrreducible2048(b *testing.B) {
	exps := knownPolys[2048]
	for i := 0; i < b.N; i++ {
		if !Irreducible(exps) {
			b.Fatal("reducible")
		}
	}
}

// TestReduceAdversarialPolys pins reduce against the bit-serial
// reference for polynomial shapes only the wire can produce: second
// exponents near the degree (folds push bits back into words a single
// downward sweep already passed) and degrees that are not multiples of
// 32 (FieldWithPoly accepts any strictly-descending list, and
// Irreducible must compute correct arithmetic to keep its security
// verdict meaningful).
func TestReduceAdversarialPolys(t *testing.T) {
	polys := [][]int{
		{128, 127, 7, 2, 1, 0}, // second exponent = n-1
		{128, 65, 64, 63, 0},   // straddles the word boundary
		{64, 63, 1, 0},
		{192, 191, 190, 0},
		{100, 97, 3, 0},  // degree not a multiple of 32
		{33, 32, 31, 0},  // misaligned, tiny
		{61, 60, 59, 0},  // misaligned, sub-word
		{256, 255, 1, 0}, // aligned, maximal second exponent
	}
	r := rng.NewSplitMix64(0xBAD)
	for _, exps := range polys {
		f := newField(exps[0], exps)
		for trial := 0; trial < 10; trial++ {
			prod := make([]uint64, (2*f.N+63)/64)
			for i := range prod {
				prod[i] = r.Uint64()
			}
			if rem := uint(2*f.N) & 63; rem != 0 {
				prod[len(prod)-1] &= (1 << rem) - 1
			}
			want := reduceBitSerial(f, prod)
			got := f.reduce(append([]uint64(nil), prod...))
			if !eq(got, want) {
				t.Fatalf("poly %v trial %d: reduce mismatch", exps, trial)
			}
		}
		// The full multiply path too (drives Square/Irreducible shapes).
		a := randElem(f, r)
		b := randElem(f, r)
		if got, want := f.Mul(a, b), reduceBitSerial(f, clmulBitSerial(a, b)); !eq(got, want) {
			t.Fatalf("poly %v: Mul mismatch", exps)
		}
	}
}

// TestFieldWithPolyWireShapes runs the full validation path on
// polynomial shapes an adversarial peer could propose; the verdicts
// must agree with a naive irreducibility scan at small degrees.
func TestFieldWithPolyWireShapes(t *testing.T) {
	// x^4+x^3+x^2+x+1 is irreducible? It equals (x^5-1)/(x-1); 5 is
	// prime and 2 is a primitive root mod 5, so yes.
	if _, err := FieldWithPoly([]int{4, 3, 2, 1, 0}); err != nil {
		t.Errorf("x^4+x^3+x^2+x+1 rejected: %v", err)
	}
	// x^4+x^3+x^2+1 = (x+1)(x^3+x+1): reducible, must be rejected.
	if _, err := FieldWithPoly([]int{4, 3, 2, 0}); err == nil {
		t.Error("reducible x^4+x^3+x^2+1 accepted")
	}
	// x^7+x^6+1 is a known irreducible trinomial.
	if _, err := FieldWithPoly([]int{7, 6, 0}); err != nil {
		t.Errorf("x^7+x^6+1 rejected: %v", err)
	}
	// x^6+x^5+1 = (x^2+x+1)(x^4+x^3+x+1)? Verify against Irreducible's
	// verdict by brute force over all degree<=3 divisors.
	brute := func(exps []int) bool {
		n := exps[0]
		var poly uint64
		for _, e := range exps {
			poly |= 1 << uint(e)
		}
		for d := uint64(2); d < 1<<uint(n); d++ {
			if polyDivides(d, poly) {
				return false
			}
		}
		return true
	}
	for _, exps := range [][]int{{6, 5, 0}, {6, 5, 4, 1, 0}, {5, 4, 0}, {5, 4, 3, 2, 0}} {
		want := brute(exps)
		got := Irreducible(exps)
		if got != want {
			t.Errorf("Irreducible(%v) = %v, brute force says %v", exps, got, want)
		}
	}
}

// polyDivides reports whether GF(2) polynomial d (bitmask, deg >= 1)
// divides p, with deg(d) < deg(p).
func polyDivides(d, p uint64) bool {
	dd := 63 - leadingZeros(d)
	dp := 63 - leadingZeros(p)
	if dd <= 0 || dd >= dp {
		return false
	}
	for p != 0 {
		tp := 63 - leadingZeros(p)
		if tp < dd {
			return false
		}
		p ^= d << uint(tp-dd)
	}
	return true
}

func leadingZeros(x uint64) int {
	n := 0
	for i := 63; i >= 0; i-- {
		if x>>uint(i)&1 == 1 {
			return n
		}
		n++
	}
	return 64
}
