// Package auth implements the authentication stage of the QKD protocol
// suite: Wegman-Carter universal hashing, exactly the construction the
// original BB84 paper sketched and the BBN system adopts.
//
// Alice and Bob preposition a small shared secret key. Each message tag
// is h_k(m) XOR r, where h is drawn from an XOR-universal hash family
// (polynomial evaluation over GF(2^64)) and r is a fresh 64-bit one-time
// pad consumed from the shared pool per message. Against an adversary
// with unlimited computing power the forgery probability per message is
// bounded by len(m)/2^64 + 2^-64 — information-theoretic, as the threat
// model of Section 6 demands.
//
// The pads cannot be reused ("the secret key bits cannot be re-used
// even once on different data without compromising the security"), so
// the pool drains with every message — and is replenished from freshly
// distilled QKD bits ("a complete authenticated conversation can
// validate a large number of new, shared secret bits from QKD, and a
// small number of these may be used to replenish the pool"). A forced
// drain of the pool is the denial-of-service attack Section 2 worries
// about; experiment E11 stages it.
package auth

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"qkd/internal/channel"
	"qkd/internal/gf2"
	"qkd/internal/keypool"
)

// TagSize is the byte length of a message tag.
const TagSize = 8

// ErrForged is returned when a tag fails verification: either the
// message was tampered with in flight, or the two ends' pad streams
// have desynchronized.
var ErrForged = errors.New("auth: tag verification failed")

// field64 is GF(2^64), shared by all MACs.
var field64 *gf2.Field

func init() {
	f, err := gf2.NewField(64)
	if err != nil {
		panic("auth: cannot construct GF(2^64): " + err.Error())
	}
	field64 = f
}

// MAC computes or verifies tags over one direction of a conversation.
// The sender holds a MAC and calls Tag; the receiver holds a mirror MAC
// (same pool contents, same order) and calls Verify. Both consume the
// shared pool identically, which is what keeps them in step.
//
// A MAC is not safe for concurrent use; each protocol direction owns
// one.
type MAC struct {
	key  uint64
	pool keypool.Source
}

// NewMAC draws a 64-bit hash key from the pool and returns the MAC.
// Both ends must construct their MACs in the same order so they draw
// identical keys. The pool is any keypool.Source — a raw reservoir or
// a QoS-classed handle of the key delivery service (internal/kms).
func NewMAC(pool keypool.Source) (*MAC, error) {
	bits, err := pool.TryConsume(64)
	if err != nil {
		return nil, fmt.Errorf("auth: drawing hash key: %w", err)
	}
	return &MAC{key: bits.Words()[0], pool: pool}, nil
}

// hash evaluates the polynomial hash of msg under the MAC key:
// Horner's rule over 64-bit blocks with a length block appended,
// all in GF(2^64).
func (m *MAC) hash(msg []byte) uint64 {
	k := []uint64{m.key}
	acc := []uint64{0}
	var block [8]byte
	for off := 0; off < len(msg); off += 8 {
		n := copy(block[:], msg[off:])
		for i := n; i < 8; i++ {
			block[i] = 0
		}
		acc = field64.Mul(acc, k)
		acc[0] ^= binary.LittleEndian.Uint64(block[:])
	}
	// Length block forecloses padding ambiguity between messages that
	// differ only in trailing zero bytes.
	acc = field64.Mul(acc, k)
	acc[0] ^= uint64(len(msg))
	acc = field64.Mul(acc, k)
	return acc[0]
}

// Tag authenticates msg, consuming 64 bits of pad. It fails with the
// pool's error when the pad supply is exhausted.
func (m *MAC) Tag(msg []byte) ([TagSize]byte, error) {
	var tag [TagSize]byte
	pad, err := m.pool.TryConsume(64)
	if err != nil {
		return tag, fmt.Errorf("auth: consuming tag pad: %w", err)
	}
	binary.LittleEndian.PutUint64(tag[:], m.hash(msg)^pad.Words()[0])
	return tag, nil
}

// Verify checks msg against tag, consuming 64 bits of pad (the mirror
// of the sender's consumption). On pad exhaustion it returns the pool
// error; on mismatch, ErrForged.
//
// Note the pad is consumed even when verification fails: the sender
// spent it, and skipping it here would desynchronize every subsequent
// message. A failed message costs both sides one pad.
func (m *MAC) Verify(msg []byte, tag [TagSize]byte) error {
	pad, err := m.pool.TryConsume(64)
	if err != nil {
		return fmt.Errorf("auth: consuming verify pad: %w", err)
	}
	want := m.hash(msg) ^ pad.Words()[0]
	if binary.LittleEndian.Uint64(tag[:]) != want {
		return ErrForged
	}
	return nil
}

// PadBitsPerMessage is the pool cost of one authenticated message.
const PadBitsPerMessage = 64

// Conn authenticates a channel.Conn: every sent message carries a tag,
// every received message is verified before delivery. It is the piece
// that defends the entire QKD protocol suite (and, per Section 5, the
// VPN control traffic) against Eve's man-in-the-middle position on the
// public channel.
type Conn struct {
	inner channel.Conn
	send  *MAC
	recv  *MAC

	// Forgeries counts verification failures observed, the signal a
	// deployment would alarm on.
	Forgeries int
}

// Wrap authenticates conn. sendPool feeds tags on outgoing messages and
// recvPool verifies incoming ones; the peer must wrap its end with the
// two pools swapped. Each pool must hold at least 64 bits for the hash
// keys.
func Wrap(conn channel.Conn, sendPool, recvPool keypool.Source) (*Conn, error) {
	s, err := NewMAC(sendPool)
	if err != nil {
		return nil, err
	}
	r, err := NewMAC(recvPool)
	if err != nil {
		return nil, err
	}
	return &Conn{inner: conn, send: s, recv: r}, nil
}

// Send implements channel.Conn.
func (c *Conn) Send(msgType uint8, payload []byte) error {
	// Tag covers the type byte as well as the payload; re-typing a
	// message is as much a forgery as rewriting it.
	tagged := make([]byte, 1+len(payload))
	tagged[0] = msgType
	copy(tagged[1:], payload)
	tag, err := c.send.Tag(tagged)
	if err != nil {
		return err
	}
	return c.inner.Send(msgType, append(payload[:len(payload):len(payload)], tag[:]...))
}

// Recv implements channel.Conn.
func (c *Conn) Recv() (channel.Message, error) {
	return c.recvCommon(func() (channel.Message, error) { return c.inner.Recv() })
}

// RecvTimeout implements channel.Conn.
func (c *Conn) RecvTimeout(d time.Duration) (channel.Message, error) {
	return c.recvCommon(func() (channel.Message, error) { return c.inner.RecvTimeout(d) })
}

func (c *Conn) recvCommon(recv func() (channel.Message, error)) (channel.Message, error) {
	m, err := recv()
	if err != nil {
		return channel.Message{}, err
	}
	if len(m.Payload) < TagSize {
		c.Forgeries++
		return channel.Message{}, ErrForged
	}
	body := m.Payload[:len(m.Payload)-TagSize]
	var tag [TagSize]byte
	copy(tag[:], m.Payload[len(m.Payload)-TagSize:])
	tagged := make([]byte, 1+len(body))
	tagged[0] = m.Type
	copy(tagged[1:], body)
	if err := c.recv.Verify(tagged, tag); err != nil {
		if errors.Is(err, ErrForged) {
			c.Forgeries++
		}
		return channel.Message{}, err
	}
	return channel.Message{Type: m.Type, Payload: body}, nil
}

// Close implements channel.Conn.
func (c *Conn) Close() error { return c.inner.Close() }

// Stats implements channel.Conn.
func (c *Conn) Stats() channel.Stats { return c.inner.Stats() }
