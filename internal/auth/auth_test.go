package auth

import (
	"errors"
	"testing"
	"testing/quick"

	"qkd/internal/bitarray"
	"qkd/internal/channel"
	"qkd/internal/keypool"
	"qkd/internal/rng"
)

// mirroredPools returns two reservoirs with identical contents, as the
// two ends of a QKD link would hold after prepositioning.
func mirroredPools(seed uint64, bits int) (*keypool.Reservoir, *keypool.Reservoir) {
	material := rng.NewSplitMix64(seed).Bits(bits)
	a := keypool.New()
	b := keypool.New()
	a.Deposit(material)
	b.Deposit(material.Clone())
	return a, b
}

func TestTagVerifyRoundTrip(t *testing.T) {
	pa, pb := mirroredPools(1, 4096)
	sender, err := NewMAC(pa)
	if err != nil {
		t.Fatal(err)
	}
	receiver, err := NewMAC(pb)
	if err != nil {
		t.Fatal(err)
	}
	msgs := [][]byte{nil, {}, []byte("x"), []byte("hello world"), make([]byte, 1000)}
	for _, msg := range msgs {
		tag, err := sender.Tag(msg)
		if err != nil {
			t.Fatalf("Tag(%q): %v", msg, err)
		}
		if err := receiver.Verify(msg, tag); err != nil {
			t.Fatalf("Verify(%q): %v", msg, err)
		}
	}
}

func TestTamperedMessageRejected(t *testing.T) {
	pa, pb := mirroredPools(2, 4096)
	sender, _ := NewMAC(pa)
	receiver, _ := NewMAC(pb)
	msg := []byte("transfer 100 to account 7")
	tag, err := sender.Tag(msg)
	if err != nil {
		t.Fatal(err)
	}
	forged := []byte("transfer 999 to account 7")
	if err := receiver.Verify(forged, tag); !errors.Is(err, ErrForged) {
		t.Errorf("forged message: err = %v, want ErrForged", err)
	}
}

func TestTamperedTagRejected(t *testing.T) {
	pa, pb := mirroredPools(3, 4096)
	sender, _ := NewMAC(pa)
	receiver, _ := NewMAC(pb)
	msg := []byte("hello")
	tag, _ := sender.Tag(msg)
	tag[0] ^= 1
	if err := receiver.Verify(msg, tag); !errors.Is(err, ErrForged) {
		t.Errorf("bad tag: err = %v, want ErrForged", err)
	}
}

func TestLengthExtensionDistinct(t *testing.T) {
	// Messages that differ only by trailing zero bytes must have
	// distinct tags (the length block guarantees it).
	pa, pb := mirroredPools(4, 4096)
	sender, _ := NewMAC(pa)
	receiver, _ := NewMAC(pb)
	tag, _ := sender.Tag([]byte{1, 2, 3})
	if err := receiver.Verify([]byte{1, 2, 3, 0}, tag); !errors.Is(err, ErrForged) {
		t.Errorf("zero-extended message accepted: %v", err)
	}
}

func TestPadConsumption(t *testing.T) {
	pa, _ := mirroredPools(5, 64+3*64)
	m, err := NewMAC(pa)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := m.Tag([]byte("msg")); err != nil {
			t.Fatalf("tag %d: %v", i, err)
		}
	}
	// Pool is now dry: the 4th tag must fail — this is the DoS surface.
	if _, err := m.Tag([]byte("msg")); err == nil {
		t.Fatal("tag succeeded on empty pool")
	}
	if pa.Available() != 0 {
		t.Errorf("pool has %d bits left", pa.Available())
	}
}

func TestReplenishmentRestoresService(t *testing.T) {
	pa, _ := mirroredPools(6, 64+64)
	m, _ := NewMAC(pa)
	m.Tag([]byte("first"))
	if _, err := m.Tag([]byte("second")); err == nil {
		t.Fatal("expected exhaustion")
	}
	// Replenish from "freshly distilled" bits.
	pa.Deposit(rng.NewSplitMix64(7).Bits(640))
	if _, err := m.Tag([]byte("second")); err != nil {
		t.Fatalf("tag after replenish: %v", err)
	}
}

func TestPadNeverReused(t *testing.T) {
	// Identical messages must produce different tags (fresh pad each).
	pa, _ := mirroredPools(8, 4096)
	m, _ := NewMAC(pa)
	t1, _ := m.Tag([]byte("same"))
	t2, _ := m.Tag([]byte("same"))
	if t1 == t2 {
		t.Error("two tags of the same message are identical — pad reuse")
	}
}

func TestDesyncCostsOnePad(t *testing.T) {
	// A forged message consumes the receiver's pad, but afterwards the
	// streams stay aligned for genuine traffic.
	pa, pb := mirroredPools(9, 4096)
	sender, _ := NewMAC(pa)
	receiver, _ := NewMAC(pb)

	// Eve injects a forgery; receiver burns one pad rejecting it...
	if err := receiver.Verify([]byte("evil"), [8]byte{1}); !errors.Is(err, ErrForged) {
		t.Fatalf("forgery: %v", err)
	}
	// ...which desynchronizes the next genuine message (sender used pad
	// #1, receiver pad #2) — demonstrating Eve's cheap DoS on the pad
	// stream. The layers above must resynchronize; here we just assert
	// the mismatch is detected rather than silently accepted.
	tag, _ := sender.Tag([]byte("real"))
	if err := receiver.Verify([]byte("real"), tag); !errors.Is(err, ErrForged) {
		t.Fatalf("desynced verify: %v, want ErrForged", err)
	}
}

func TestWrapConnRoundTrip(t *testing.T) {
	raw1, raw2 := channel.MemPair(8)
	poolAB1, poolAB2 := mirroredPools(10, 8192)
	poolBA1, poolBA2 := mirroredPools(11, 8192)
	alice, err := Wrap(raw1, poolAB1, poolBA1)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := Wrap(raw2, poolBA2, poolAB2)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.Send(42, []byte("sift please")); err != nil {
		t.Fatal(err)
	}
	m, err := bob.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != 42 || string(m.Payload) != "sift please" {
		t.Fatalf("got %d %q", m.Type, m.Payload)
	}
	// Reverse direction.
	if err := bob.Send(43, []byte("ack")); err != nil {
		t.Fatal(err)
	}
	m, err = alice.Recv()
	if err != nil || m.Type != 43 || string(m.Payload) != "ack" {
		t.Fatalf("reverse: %v %v", m, err)
	}
}

func TestWrapConnDetectsMITM(t *testing.T) {
	// Eve rewrites payloads in flight; the authenticated wrapper must
	// reject every altered message.
	inner1, inner2 := channel.NewMITM(func(dir channel.Direction, m channel.Message) (channel.Message, bool) {
		if dir == channel.AliceToBob && len(m.Payload) > 8 {
			m.Payload[0] ^= 0xFF
		}
		return m, false
	})
	poolAB1, poolAB2 := mirroredPools(12, 8192)
	poolBA1, poolBA2 := mirroredPools(13, 8192)
	alice, _ := Wrap(inner1, poolAB1, poolBA1)
	bob, _ := Wrap(inner2, poolBA2, poolAB2)

	if err := alice.Send(1, []byte("authentic data")); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Recv(); !errors.Is(err, ErrForged) {
		t.Fatalf("MITM rewrite: err = %v, want ErrForged", err)
	}
	if bob.Forgeries != 1 {
		t.Errorf("Forgeries = %d", bob.Forgeries)
	}
}

func TestWrapConnDetectsTypeRewrite(t *testing.T) {
	inner1, inner2 := channel.NewMITM(func(dir channel.Direction, m channel.Message) (channel.Message, bool) {
		if dir == channel.AliceToBob {
			m.Type = 99 // retype the message, leave payload alone
		}
		return m, false
	})
	poolAB1, poolAB2 := mirroredPools(14, 8192)
	poolBA1, poolBA2 := mirroredPools(15, 8192)
	alice, _ := Wrap(inner1, poolAB1, poolBA1)
	bob, _ := Wrap(inner2, poolBA2, poolAB2)
	alice.Send(1, []byte("payload"))
	if _, err := bob.Recv(); !errors.Is(err, ErrForged) {
		t.Fatalf("type rewrite: err = %v, want ErrForged", err)
	}
}

func TestWrapRequiresKeyMaterial(t *testing.T) {
	raw1, _ := channel.MemPair(1)
	empty := keypool.New()
	if _, err := Wrap(raw1, empty, empty); err == nil {
		t.Error("Wrap succeeded with empty pools")
	}
}

func TestHashDependsOnKey(t *testing.T) {
	p1 := keypool.New()
	p1.Deposit(bitarray.FromBools(make([]bool, 64))) // key = 0... all zero key!
	// A zero hash key maps every message to 0 — NewMAC must still work
	// (universality holds over random keys; a zero draw is 2^-64), but
	// distinct keys must give distinct hashes in general:
	m1 := &MAC{key: 0x1234}
	m2 := &MAC{key: 0x5678}
	msg := []byte("some message")
	if m1.hash(msg) == m2.hash(msg) {
		t.Error("different keys, same hash")
	}
}

// Property: Verify accepts exactly what Tag produced, for arbitrary
// messages, and mirrored MACs stay in sync over many messages.
func TestPropertyTagVerifySync(t *testing.T) {
	f := func(seed uint64, msgs [][]byte) bool {
		if len(msgs) > 20 {
			msgs = msgs[:20]
		}
		need := 64 + len(msgs)*64 + 64
		pa, pb := mirroredPools(seed, need)
		s, err1 := NewMAC(pa)
		r, err2 := NewMAC(pb)
		if err1 != nil || err2 != nil {
			return false
		}
		for _, msg := range msgs {
			tag, err := s.Tag(msg)
			if err != nil {
				return false
			}
			if err := r.Verify(msg, tag); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTag1KB(b *testing.B) {
	pool := keypool.New()
	pool.Deposit(rng.NewSplitMix64(1).Bits(64 + 64*(b.N+1)))
	m, err := NewMAC(pool)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Tag(msg); err != nil {
			b.Fatal(err)
		}
	}
}
