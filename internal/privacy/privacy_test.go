package privacy

import (
	"testing"
	"testing/quick"

	"qkd/internal/bitarray"
	"qkd/internal/rng"
)

func TestRoundUp32(t *testing.T) {
	cases := map[int]int{1: 32, 31: 32, 32: 32, 33: 64, 64: 64, 1000: 1024, 4096: 4096}
	for in, want := range cases {
		if got := RoundUp32(in); got != want {
			t.Errorf("RoundUp32(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestBothSidesAgree(t *testing.T) {
	r := rng.NewSplitMix64(1)
	for _, inputLen := range []int{40, 512, 1000, 4096} {
		input := r.Bits(inputLen)
		m := inputLen / 2
		p, err := NewParams(inputLen, m, r)
		if err != nil {
			t.Fatalf("NewParams(%d, %d): %v", inputLen, m, err)
		}
		a, err := p.Apply(input)
		if err != nil {
			t.Fatal(err)
		}
		// The peer decodes the wire form and applies independently.
		q, err := DecodeParams(p.Encode())
		if err != nil {
			t.Fatalf("DecodeParams: %v", err)
		}
		b, err := q.Apply(input.Clone())
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Fatalf("inputLen %d: sides disagree", inputLen)
		}
		if a.Len() != m {
			t.Fatalf("output %d bits, want %d", a.Len(), m)
		}
	}
}

func TestDifferentInputsDiffer(t *testing.T) {
	// Universality sanity: flipping one input bit changes the output
	// with overwhelming probability.
	r := rng.NewSplitMix64(2)
	input := r.Bits(1024)
	p, err := NewParams(1024, 512, r)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := p.Apply(input)
	same := 0
	for i := 0; i < 64; i++ {
		mod := input.Clone()
		mod.Flip(i * 16)
		out, err := p.Apply(mod)
		if err != nil {
			t.Fatal(err)
		}
		if out.Equal(base) {
			same++
		}
	}
	if same != 0 {
		t.Errorf("%d of 64 single-bit flips produced identical output", same)
	}
}

func TestOutputLooksBalanced(t *testing.T) {
	// Hash outputs over random inputs should be roughly half ones.
	r := rng.NewSplitMix64(3)
	p, err := NewParams(512, 256, r)
	if err != nil {
		t.Fatal(err)
	}
	ones, total := 0, 0
	for i := 0; i < 50; i++ {
		out, err := p.Apply(r.Bits(512))
		if err != nil {
			t.Fatal(err)
		}
		ones += out.OnesCount()
		total += out.Len()
	}
	frac := float64(ones) / float64(total)
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("output ones fraction %v", frac)
	}
}

func TestAddendApplied(t *testing.T) {
	r := rng.NewSplitMix64(4)
	input := r.Bits(100)
	p, err := NewParams(100, 50, r)
	if err != nil {
		t.Fatal(err)
	}
	out1, _ := p.Apply(input)
	p.Addend.Flip(0)
	out2, _ := p.Apply(input)
	if out1.Equal(out2) {
		t.Error("changing the addend did not change the output")
	}
	out1.Flip(0)
	if !out1.Equal(out2) {
		t.Error("addend flip did not act as XOR on bit 0")
	}
}

func TestNewParamsValidation(t *testing.T) {
	r := rng.NewSplitMix64(5)
	if _, err := NewParams(0, 1, r); err == nil {
		t.Error("zero input length accepted")
	}
	if _, err := NewParams(100, 0, r); err == nil {
		t.Error("zero output accepted")
	}
	if _, err := NewParams(100, 101, r); err == nil {
		t.Error("expansion accepted — privacy amplification must shorten")
	}
}

func TestApplyRejectsOversizedInput(t *testing.T) {
	r := rng.NewSplitMix64(6)
	p, err := NewParams(100, 50, r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Apply(r.Bits(p.N() + 1)); err == nil {
		t.Error("oversized input accepted")
	}
}

func TestDecodeRejectsTampering(t *testing.T) {
	r := rng.NewSplitMix64(7)
	p, err := NewParams(256, 128, r)
	if err != nil {
		t.Fatal(err)
	}
	good := p.Encode()
	if _, err := DecodeParams(good); err != nil {
		t.Fatalf("valid encoding rejected: %v", err)
	}
	// Truncated.
	if _, err := DecodeParams(good[:len(good)-3]); err == nil {
		t.Error("truncated encoding accepted")
	}
	// Empty.
	if _, err := DecodeParams(nil); err == nil {
		t.Error("empty encoding accepted")
	}
}

func TestDecodeRejectsReduciblePolynomial(t *testing.T) {
	// Hand-craft parameters with x^64 + 1 (reducible): the receiver
	// must refuse — this is a security check against a malicious or
	// broken peer.
	r := rng.NewSplitMix64(8)
	p, err := NewParams(64, 32, r)
	if err != nil {
		t.Fatal(err)
	}
	p.PolyExps = []int{64, 0}
	if _, err := DecodeParams(p.Encode()); err == nil {
		t.Error("reducible polynomial accepted")
	}
}

func TestDecodeRejectsZeroMultiplier(t *testing.T) {
	r := rng.NewSplitMix64(9)
	p, err := NewParams(64, 32, r)
	if err != nil {
		t.Fatal(err)
	}
	p.Multiplier = bitarray.New(p.N())
	if _, err := DecodeParams(p.Encode()); err == nil {
		t.Error("zero multiplier accepted")
	}
}

// Property: encode/decode round-trips and both sides agree, for random
// sizes and inputs.
func TestPropertyRoundTripAgreement(t *testing.T) {
	r := rng.NewSplitMix64(10)
	f := func(lenRaw, mRaw uint16, seed uint64) bool {
		inputLen := int(lenRaw)%512 + 1
		m := int(mRaw)%inputLen + 1
		rr := rng.NewSplitMix64(seed)
		input := rr.Bits(inputLen)
		p, err := NewParams(inputLen, m, r)
		if err != nil {
			return false
		}
		a, err := p.Apply(input)
		if err != nil {
			return false
		}
		q, err := DecodeParams(p.Encode())
		if err != nil {
			return false
		}
		b, err := q.Apply(input)
		if err != nil {
			return false
		}
		return a.Equal(b) && a.Len() == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// Property: the map x -> h(x) is linear up to the addend:
// h(x) ^ h(y) ^ h(x^y) == addend-cancelled constant h(0)^... —
// concretely, (h(x)^b) ^ (h(y)^b) == h(x^y)^b.
func TestPropertyLinearity(t *testing.T) {
	r := rng.NewSplitMix64(11)
	p, err := NewParams(256, 100, r)
	if err != nil {
		t.Fatal(err)
	}
	f := func(sx, sy uint64) bool {
		rx := rng.NewSplitMix64(sx)
		ry := rng.NewSplitMix64(sy)
		x := rx.Bits(256)
		y := ry.Bits(256)
		hx, err1 := p.Apply(x)
		hy, err2 := p.Apply(y)
		xy := x.Clone()
		xy.Xor(y)
		hxy, err3 := p.Apply(xy)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		// Remove the addend from each.
		hx.Xor(p.Addend)
		hy.Xor(p.Addend)
		hxy.Xor(p.Addend)
		hx.Xor(hy)
		return hx.Equal(hxy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkApply4096to2048(b *testing.B) {
	r := rng.NewSplitMix64(1)
	input := r.Bits(4096)
	p, err := NewParams(4096, 2048, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Apply(input); err != nil {
			b.Fatal(err)
		}
	}
}
