// Package privacy implements the privacy-amplification stage of the
// QKD pipeline: compressing the error-corrected bits with a universal
// hash so that Eve's bounded partial knowledge of the input shrinks to
// a negligible fraction of a bit about the output.
//
// The construction is the paper's, verbatim: "The side that initiates
// privacy amplification chooses a linear hash function over the Galois
// Field GF[2^n] where n is the number of bits as input, rounded up to a
// multiple of 32. He then transmits four things to the other end — the
// number of bits m of the shortened result, the (sparse) primitive
// polynomial of the Galois field, a multiplier (n bits long), and an
// m-bit polynomial to add (i.e. a bit string to exclusive-or) with the
// product. Each side then performs the corresponding hash and truncates
// the result to m bits."
//
// h(x) = truncate_m(multiplier * x  in GF(2^n))  XOR  addend
//
// is the (a*x+b) universal family, so the Leftover Hash Lemma applies:
// with m chosen at or below the entropy estimate (package entropy),
// Eve's expected information about h(x) is below 2^-(H-m) bits.
package privacy

import (
	"encoding/binary"
	"fmt"

	"qkd/internal/bitarray"
	"qkd/internal/gf2"
	"qkd/internal/rng"
)

// Params fully describes one privacy-amplification application; it is
// what the initiating side transmits.
type Params struct {
	// M is the output length in bits.
	M int
	// PolyExps are the field polynomial's exponents, descending.
	PolyExps []int
	// Multiplier is the n-bit field element a.
	Multiplier *bitarray.BitArray
	// Addend is the m-bit XOR mask b.
	Addend *bitarray.BitArray

	field *gf2.Field
}

// RoundUp32 returns n rounded up to a multiple of 32 (minimum 32), the
// paper's field-degree rule.
func RoundUp32(n int) int {
	if n <= 32 {
		return 32
	}
	return (n + 31) / 32 * 32
}

// NewParams chooses hash parameters for inputs of inputLen bits
// shortened to m bits, drawing the multiplier and addend from r.
//
// In production the randomness must be private to the honest parties
// until transmitted; the protocol remains secure even though Eve sees
// the parameters afterwards (universality is over the family choice,
// made after Eve's interaction with the quantum channel ends).
func NewParams(inputLen, m int, r *rng.SplitMix64) (*Params, error) {
	if inputLen <= 0 {
		return nil, fmt.Errorf("privacy: input length %d must be positive", inputLen)
	}
	if m <= 0 || m > inputLen {
		return nil, fmt.Errorf("privacy: output length %d out of (0, %d]", m, inputLen)
	}
	n := RoundUp32(inputLen)
	f, err := gf2.NewField(n)
	if err != nil {
		return nil, err
	}
	mult := r.Bits(n)
	// A zero multiplier collapses the family; redraw (probability 2^-n).
	for mult.OnesCount() == 0 {
		mult = r.Bits(n)
	}
	return &Params{
		M:          m,
		PolyExps:   f.Poly(),
		Multiplier: mult,
		Addend:     r.Bits(m),
		field:      f,
	}, nil
}

// N returns the field degree.
func (p *Params) N() int { return p.PolyExps[0] }

// Apply hashes bits (at most N long) down to M bits. Both sides of the
// link call Apply with identical Params and identical inputs and obtain
// identical outputs.
func (p *Params) Apply(bits *bitarray.BitArray) (*bitarray.BitArray, error) {
	n := p.N()
	if bits.Len() > n {
		return nil, fmt.Errorf("privacy: input %d bits exceeds field degree %d", bits.Len(), n)
	}
	if p.field == nil {
		f, err := gf2.FieldWithPoly(p.PolyExps)
		if err != nil {
			return nil, err
		}
		p.field = f
	}
	// Zero-pad the input up to n bits.
	x := make([]uint64, p.field.Words())
	copy(x, bits.Words())
	prod := p.field.Mul(p.Multiplier.Words(), x)
	out := bitarray.FromWords(prod, n)
	out = out.Slice(0, p.M)
	out.Xor(p.Addend)
	return out, nil
}

// Encode serializes the parameters for the public channel:
// m | #exps | exps... (varints), then multiplier bytes, addend bytes.
func (p *Params) Encode() []byte {
	buf := make([]byte, 0, 16+len(p.PolyExps)*4)
	buf = binary.AppendUvarint(buf, uint64(p.M))
	buf = binary.AppendUvarint(buf, uint64(len(p.PolyExps)))
	for _, e := range p.PolyExps {
		buf = binary.AppendUvarint(buf, uint64(e))
	}
	buf = append(buf, p.Multiplier.Bytes()...)
	buf = append(buf, p.Addend.Bytes()...)
	return buf
}

// DecodeParams parses and validates parameters received from the peer.
// Validation includes an irreducibility check on the proposed
// polynomial: a reducible modulus would quietly break universality.
func DecodeParams(data []byte) (*Params, error) {
	m, off, err := uvarint(data, 0)
	if err != nil {
		return nil, fmt.Errorf("privacy: m: %w", err)
	}
	nExps, off, err := uvarint(data, off)
	if err != nil {
		return nil, fmt.Errorf("privacy: exponent count: %w", err)
	}
	if nExps < 2 || nExps > 16 {
		return nil, fmt.Errorf("privacy: implausible exponent count %d", nExps)
	}
	exps := make([]int, nExps)
	for i := range exps {
		var e uint64
		e, off, err = uvarint(data, off)
		if err != nil {
			return nil, fmt.Errorf("privacy: exponent %d: %w", i, err)
		}
		// Cap the field degree well above any realistic batch (the
		// engine amplifies a few thousand bits at a time) but low
		// enough that validating the polynomial — a Rabin test costing
		// O(degree^2) — cannot be weaponized as a CPU exhaustion attack.
		if e > 1<<14 {
			return nil, fmt.Errorf("privacy: exponent %d absurdly large", e)
		}
		exps[i] = int(e)
	}
	f, err := gf2.FieldWithPoly(exps)
	if err != nil {
		return nil, fmt.Errorf("privacy: rejected peer polynomial: %w", err)
	}
	n := f.N
	// Compare in uint64 space: casting an adversarial 2^63-scale m to
	// int first would wrap negative and slip past the bound.
	if m == 0 || m > uint64(n) {
		return nil, fmt.Errorf("privacy: output length %d out of (0, %d]", m, n)
	}
	multBytes := (n + 7) / 8
	addBytes := (int(m) + 7) / 8
	if len(data)-off != multBytes+addBytes {
		return nil, fmt.Errorf("privacy: body is %d bytes, want %d", len(data)-off, multBytes+addBytes)
	}
	mult := bitarray.FromBytes(data[off : off+multBytes])
	mult.Truncate(n)
	if mult.OnesCount() == 0 {
		return nil, fmt.Errorf("privacy: zero multiplier")
	}
	add := bitarray.FromBytes(data[off+multBytes:])
	add.Truncate(int(m))
	return &Params{
		M:          int(m),
		PolyExps:   exps,
		Multiplier: mult,
		Addend:     add,
		field:      f,
	}, nil
}

func uvarint(p []byte, off int) (uint64, int, error) {
	v, n := binary.Uvarint(p[off:])
	if n <= 0 {
		return 0, 0, fmt.Errorf("bad varint at offset %d", off)
	}
	return v, off + n, nil
}
