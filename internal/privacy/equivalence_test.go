package privacy

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"qkd/internal/rng"
)

// Output pinning for the GF(2^n) hash: the windowed comb multiply and
// precomputed shift-fold reduction in package gf2 are implementation
// detail — for fixed seeds the amplified bits must be bit-identical to
// the original bit-serial field arithmetic. Hashes recorded from that
// implementation; both the local-Params path and the wire path
// (Encode -> DecodeParams, which validates the polynomial through
// FieldWithPoly) are pinned.
var applyGolden = []struct {
	seed     uint64
	inputLen int
	m        int
	hash     string
}{
	{11, 4096, 2048, "4b13e15fcd812b5fa03e23ca3cfe8a51119f268d69a00fe2a1d128657f87fe9c"},
	{12, 4096, 511, "778fc8c58b336315945c321da33875dacdc2c99f8d5dd6cde43d290e6404f421"},
	{13, 1000, 700, "2ec5ed6c4cf464404919c92c6657856cf0d70fd82300212cd23d0cd01a8e4d21"},
	{14, 96, 64, "6307a4c29da4a8627c99dfbf53943b6ffbbf3af5d218f1f3682feb2162499b40"},
	{15, 8192, 4096, "06a925b85df7482f467c9e33b1625fff6cf151765d35184e1b2fd81986f98791"},
}

func TestApplyOutputsPinned(t *testing.T) {
	for _, tc := range applyGolden {
		r := rng.NewSplitMix64(tc.seed)
		params, err := NewParams(tc.inputLen, tc.m, r)
		if err != nil {
			t.Fatalf("seed %d: NewParams: %v", tc.seed, err)
		}
		input := r.Bits(tc.inputLen)

		out, err := params.Apply(input)
		if err != nil {
			t.Fatalf("seed %d: Apply: %v", tc.seed, err)
		}
		if out.Len() != tc.m {
			t.Fatalf("seed %d: output %d bits, want %d", tc.seed, out.Len(), tc.m)
		}
		got := hex.EncodeToString(sumBits(out.Bytes()))
		if got != tc.hash {
			t.Errorf("seed %d: local-path output changed:\n got  %s\n want %s",
				tc.seed, got, tc.hash)
		}

		// Wire path: the receiving side decodes and re-validates the
		// polynomial (FieldWithPoly + verified-poly cache), then hashes.
		decoded, err := DecodeParams(params.Encode())
		if err != nil {
			t.Fatalf("seed %d: DecodeParams: %v", tc.seed, err)
		}
		out2, err := decoded.Apply(input)
		if err != nil {
			t.Fatalf("seed %d: decoded Apply: %v", tc.seed, err)
		}
		if !out2.Equal(out) {
			t.Errorf("seed %d: wire-path output differs from local path", tc.seed)
		}
	}
}

func sumBits(p []byte) []byte {
	s := sha256.Sum256(p)
	return s[:]
}
