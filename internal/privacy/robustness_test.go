package privacy

import (
	"testing"
	"testing/quick"

	"qkd/internal/rng"
)

// DecodeParams consumes attacker-controlled bytes; it must reject
// garbage with an error, never panic — and never accept parameters
// whose polynomial is reducible (which would break universality).

func TestDecodeParamsNeverPanics(t *testing.T) {
	f := func(p []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		q, err := DecodeParams(p)
		if err == nil && q == nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeParamsBitflips(t *testing.T) {
	gen := rng.NewSplitMix64(4)
	p, err := NewParams(256, 128, gen)
	if err != nil {
		t.Fatal(err)
	}
	valid := p.Encode()
	accepted := 0
	for trial := 0; trial < 200; trial++ {
		buf := append([]byte(nil), valid...)
		buf[gen.Intn(len(buf))] ^= byte(1 << gen.Intn(8))
		q, err := DecodeParams(buf)
		if err != nil {
			continue
		}
		accepted++
		// Anything accepted must still be structurally sound: a field
		// polynomial the validator certified and consistent sizes.
		if q.M <= 0 || q.M > q.N() || q.Multiplier.Len() != q.N() || q.Addend.Len() != q.M {
			t.Fatalf("trial %d: accepted inconsistent params", trial)
		}
	}
	// Multiplier/addend flips are legitimately accepted (they are just
	// different hash family members); header flips must mostly fail.
	t.Logf("%d/200 single-bit corruptions decoded (multiplier/addend bits)", accepted)
}
