// Package sifting implements the first stage of the QKD protocol
// pipeline: winnowing away the "failed qubits" — pulses that never
// arrived, gates where no detector (or both detectors) fired, and
// symbols where Bob measured in the wrong basis.
//
// The exchange is a single round trip per frame:
//
//  1. Bob -> Alice: a sift message listing, for each usable detection,
//     the pulse slot and the basis Bob selected. Slot numbers are
//     delta-coded with varints, which is the run-length encoding the
//     paper's appendix calls for: at ~1 % detection probability the
//     dominant content of a naive per-slot encoding would be runs of
//     "no detection".
//  2. Alice -> Bob: a sift response carrying one bit per reported
//     detection — keep (bases matched) or discard.
//
// After the transaction both sides hold identical-length sifted bit
// strings (identical up to quantum bit errors, which the next stage —
// error correction — repairs) and the list of pulse slots they came
// from.
//
// The comparison itself runs on packed bit columns: Bob's reported
// bases travel as a bit vector, Alice gathers her bases at the reported
// slots into another bit vector, and the keep mask is a word-at-a-time
// XNOR of the two; the sifted bits fall out of a packed compress
// (extract-by-mask) rather than per-detection branching.
package sifting

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"qkd/internal/bitarray"
	"qkd/internal/qframe"
)

// SiftMessage is Bob's report of which slots produced usable clicks and
// with which basis he measured each. Bases is a packed column parallel
// to Slots (bit i set means BasisDiag).
type SiftMessage struct {
	FrameID    uint64
	SlotsTotal int
	Slots      []uint32
	Bases      *bitarray.BitArray

	// values holds the bit each reported click registered, parallel to
	// Slots. BuildSift fills it so Bob's Apply need not re-derive the
	// columns from the frame; it never goes on the wire (Alice must not
	// learn Bob's bits) and decoded messages leave it nil.
	values *bitarray.BitArray
}

// AddDetection appends one reported detection (used by tests and
// hand-built messages; BuildSift is the bulk path).
func (m *SiftMessage) AddDetection(slot uint32, b qframe.Basis) {
	if m.Bases == nil {
		m.Bases = bitarray.New(0)
	}
	m.Slots = append(m.Slots, slot)
	m.Bases.Append(int(b))
}

// BuildSift constructs Bob's sift message from a received frame,
// dropping no-clicks and double-clicks.
func BuildSift(rx *qframe.RxFrame) *SiftMessage {
	slots, bases, values := rx.Usable()
	return &SiftMessage{
		FrameID:    rx.ID,
		SlotsTotal: rx.SlotsTotal,
		Slots:      slots,
		Bases:      bases,
		values:     values,
	}
}

// basesOrEmpty tolerates hand-built messages with a nil column.
func (m *SiftMessage) basesOrEmpty() *bitarray.BitArray {
	if m.Bases == nil {
		return bitarray.New(0)
	}
	return m.Bases
}

// Encode serializes the message with delta/varint slot compression and
// packed basis bits.
func (m *SiftMessage) Encode() []byte {
	buf := make([]byte, 0, 16+2*len(m.Slots))
	buf = binary.AppendUvarint(buf, m.FrameID)
	buf = binary.AppendUvarint(buf, uint64(m.SlotsTotal))
	buf = binary.AppendUvarint(buf, uint64(len(m.Slots)))
	prev := int64(-1)
	for _, s := range m.Slots {
		gap := int64(s) - prev // >= 1 for strictly increasing slots
		buf = binary.AppendUvarint(buf, uint64(gap))
		prev = int64(s)
	}
	return append(buf, m.basesOrEmpty().Bytes()...)
}

// EncodeNaive serializes without compression: 4 bytes of slot number
// plus 1 basis byte per detection. Kept as the baseline the RLE
// encoding is measured against.
func (m *SiftMessage) EncodeNaive() []byte {
	buf := make([]byte, 0, 16+5*len(m.Slots))
	buf = binary.AppendUvarint(buf, m.FrameID)
	buf = binary.AppendUvarint(buf, uint64(m.SlotsTotal))
	buf = binary.AppendUvarint(buf, uint64(len(m.Slots)))
	bases := m.basesOrEmpty()
	for i, s := range m.Slots {
		var rec [5]byte
		binary.BigEndian.PutUint32(rec[:4], s)
		rec[4] = byte(bases.Get(i))
		buf = append(buf, rec[:]...)
	}
	return buf
}

// DecodeSift parses an encoded sift message.
func DecodeSift(p []byte) (*SiftMessage, error) {
	m := &SiftMessage{}
	var off int
	var err error
	if m.FrameID, off, err = uvarint(p, 0); err != nil {
		return nil, fmt.Errorf("sifting: frame id: %w", err)
	}
	slotsTotal, off, err := uvarint(p, off)
	if err != nil {
		return nil, fmt.Errorf("sifting: slot count: %w", err)
	}
	if slotsTotal > 1<<32 {
		return nil, fmt.Errorf("sifting: implausible slot count %d", slotsTotal)
	}
	m.SlotsTotal = int(slotsTotal)
	count, off, err := uvarint(p, off)
	if err != nil {
		return nil, fmt.Errorf("sifting: detection count: %w", err)
	}
	if count > uint64(m.SlotsTotal) {
		return nil, fmt.Errorf("sifting: %d detections exceed %d slots", count, m.SlotsTotal)
	}
	// Every detection costs at least one gap byte, so a payload of
	// len(p) bytes cannot legitimately encode more detections than
	// that — reject before allocating attacker-chosen sizes.
	if count > uint64(len(p)) {
		return nil, fmt.Errorf("sifting: %d detections cannot fit in %d bytes", count, len(p))
	}
	m.Slots = make([]uint32, count)
	prev := int64(-1)
	for i := range m.Slots {
		gap, next, err := uvarint(p, off)
		if err != nil {
			return nil, fmt.Errorf("sifting: slot gap %d: %w", i, err)
		}
		off = next
		slot := prev + int64(gap)
		if gap == 0 || slot >= int64(m.SlotsTotal) {
			return nil, fmt.Errorf("sifting: slot %d out of order or range", slot)
		}
		m.Slots[i] = uint32(slot)
		prev = slot
	}
	need := (int(count) + 7) / 8
	if len(p)-off < need {
		return nil, fmt.Errorf("sifting: basis bits truncated: have %d, need %d", len(p)-off, need)
	}
	m.Bases = bitarray.FromBytes(p[off : off+need])
	m.Bases.Truncate(int(count))
	return m, nil
}

// Response is Alice's verdict: bit i is 1 iff detection i of the sift
// message should be kept (Bob's basis matched Alice's).
type Response struct {
	FrameID uint64
	Keep    *bitarray.BitArray
}

// Encode serializes the response.
func (r *Response) Encode() []byte {
	buf := make([]byte, 0, 12+r.Keep.Len()/8)
	buf = binary.AppendUvarint(buf, r.FrameID)
	buf = binary.AppendUvarint(buf, uint64(r.Keep.Len()))
	return append(buf, r.Keep.Bytes()...)
}

// DecodeResponse parses an encoded response.
func DecodeResponse(p []byte) (*Response, error) {
	frameID, off, err := uvarint(p, 0)
	if err != nil {
		return nil, fmt.Errorf("sifting: response frame id: %w", err)
	}
	n, off, err := uvarint(p, off)
	if err != nil {
		return nil, fmt.Errorf("sifting: keep length: %w", err)
	}
	// Bound before casting: a 2^63-scale claim would overflow int and
	// turn the length check below into a negative-slice panic.
	if n > uint64(8*len(p)) {
		return nil, fmt.Errorf("sifting: %d keep bits cannot fit in %d bytes", n, len(p))
	}
	need := (int(n) + 7) / 8
	if len(p)-off < need {
		return nil, fmt.Errorf("sifting: keep bits truncated")
	}
	keep := bitarray.FromBytes(p[off : off+need])
	keep.Truncate(int(n))
	return &Response{FrameID: frameID, Keep: keep}, nil
}

// Result is one side's outcome of sifting a frame.
type Result struct {
	FrameID uint64
	// Bits are the sifted key bits, in slot order.
	Bits *bitarray.BitArray
	// Slots are the pulse slots each bit came from.
	Slots []uint32
}

// filterSlots returns the slots whose keep bit is set, walking the keep
// mask word-at-a-time.
func filterSlots(slots []uint32, keep *bitarray.BitArray) []uint32 {
	out := make([]uint32, 0, keep.OnesCount())
	for wi, w := range keep.Words() {
		base := wi << 6
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &= w - 1
			out = append(out, slots[base+b])
		}
	}
	return out
}

// Respond runs Alice's side: compare Bob's reported bases against the
// transmitted frame and produce both the response message and Alice's
// own sifted result. The comparison is columnar: gather Alice's bases
// at the reported slots, XNOR against Bob's packed bases for the keep
// mask, and compress Alice's values by that mask for the sifted bits.
func Respond(tx *qframe.TxFrame, m *SiftMessage) (*Response, *Result, error) {
	if tx.ID != m.FrameID {
		return nil, nil, fmt.Errorf("sifting: frame mismatch: tx %d, sift %d", tx.ID, m.FrameID)
	}
	if m.SlotsTotal != tx.Len() {
		return nil, nil, fmt.Errorf("sifting: slot count mismatch: tx %d, sift %d",
			tx.Len(), m.SlotsTotal)
	}
	bases := m.basesOrEmpty()
	if bases.Len() != len(m.Slots) {
		return nil, nil, fmt.Errorf("sifting: %d slots but %d basis bits",
			len(m.Slots), bases.Len())
	}
	keep := tx.BasisColumn().SelectU32(m.Slots)
	keep.Xor(bases)
	keep.Not() // 1 where Alice's and Bob's bases agree
	res := &Result{
		FrameID: m.FrameID,
		Bits:    tx.ValueColumn().SelectU32(m.Slots).Compress(keep),
		Slots:   filterSlots(m.Slots, keep),
	}
	return &Response{FrameID: m.FrameID, Keep: keep}, res, nil
}

// Apply runs Bob's side: fold Alice's response into his detection
// record, producing his sifted result. m must be the sift message built
// from rx (Bob replays his own report to locate the kept bits).
func Apply(rx *qframe.RxFrame, m *SiftMessage, r *Response) (*Result, error) {
	if r.FrameID != m.FrameID {
		return nil, fmt.Errorf("sifting: response frame %d for sift %d", r.FrameID, m.FrameID)
	}
	if m.FrameID != rx.ID {
		return nil, fmt.Errorf("sifting: sift message frame %d for frame %d", m.FrameID, rx.ID)
	}
	if r.Keep.Len() != len(m.Slots) {
		return nil, fmt.Errorf("sifting: response keeps %d bits for %d detections",
			r.Keep.Len(), len(m.Slots))
	}
	values := m.values
	if values != nil {
		// BuildSift carried the values column along; just confirm the
		// message still matches the frame's click census.
		if n := rx.ClickCount(); n != len(m.Slots) {
			return nil, fmt.Errorf("sifting: sift message reports %d detections, frame has %d usable",
				len(m.Slots), n)
		}
	} else {
		// Hand-built or decoded message: re-derive the columns.
		slots, _, v := rx.Usable()
		if len(slots) != len(m.Slots) {
			return nil, fmt.Errorf("sifting: sift message reports %d detections, frame has %d usable",
				len(m.Slots), len(slots))
		}
		for i := range slots {
			if slots[i] != m.Slots[i] {
				return nil, fmt.Errorf("sifting: sift message slot %d does not match frame slot %d",
					m.Slots[i], slots[i])
			}
		}
		values = v
	}
	return &Result{
		FrameID: m.FrameID,
		Bits:    values.Compress(r.Keep),
		Slots:   filterSlots(m.Slots, r.Keep),
	}, nil
}

// uvarint reads a varint at p[off:], returning the value and new offset.
func uvarint(p []byte, off int) (uint64, int, error) {
	v, n := binary.Uvarint(p[off:])
	if n <= 0 {
		return 0, 0, fmt.Errorf("bad varint at offset %d", off)
	}
	return v, off + n, nil
}
