package sifting

import (
	"testing"
	"testing/quick"

	"qkd/internal/photonics"
	"qkd/internal/qframe"
)

// makeFrames builds a deterministic tx/rx pair at roughly the requested
// detection probability using the photonic simulator.
func makeFrames(t *testing.T, seed uint64, slots int) (*qframe.TxFrame, *qframe.RxFrame) {
	t.Helper()
	p := photonics.DefaultParams()
	l := photonics.NewLink(p, seed)
	return l.TransmitFrame(1, slots)
}

func TestSiftRoundTripAgreesWithGroundTruth(t *testing.T) {
	tx, rx := makeFrames(t, 1, 50000)

	sm := BuildSift(rx)
	decoded, err := DecodeSift(sm.Encode())
	if err != nil {
		t.Fatalf("DecodeSift: %v", err)
	}
	resp, aliceRes, err := Respond(tx, decoded)
	if err != nil {
		t.Fatalf("Respond: %v", err)
	}
	respDecoded, err := DecodeResponse(resp.Encode())
	if err != nil {
		t.Fatalf("DecodeResponse: %v", err)
	}
	bobRes, err := Apply(rx, sm, respDecoded)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}

	if aliceRes.Bits.Len() != bobRes.Bits.Len() {
		t.Fatalf("sifted lengths differ: alice %d, bob %d",
			aliceRes.Bits.Len(), bobRes.Bits.Len())
	}
	if len(aliceRes.Slots) != len(bobRes.Slots) {
		t.Fatal("slot lists differ in length")
	}
	for i := range aliceRes.Slots {
		if aliceRes.Slots[i] != bobRes.Slots[i] {
			t.Fatalf("slot %d differs: %d vs %d", i, aliceRes.Slots[i], bobRes.Slots[i])
		}
	}
	// The sifted strings must match ground truth: Hamming distance equals
	// the simulator's measured error count.
	sifted, errors := photonics.MeasuredQBER(tx, rx)
	if aliceRes.Bits.Len() != sifted {
		t.Errorf("sifted %d bits, ground truth %d", aliceRes.Bits.Len(), sifted)
	}
	if d := aliceRes.Bits.HammingDistance(bobRes.Bits); d != errors {
		t.Errorf("sifted strings differ in %d bits, ground truth %d errors", d, errors)
	}
}

func TestSiftDropsDoubleClicks(t *testing.T) {
	rx := qframe.NewRxFrame(1, 10)
	rx.Record(1, qframe.BasisRect, qframe.ClickD0)
	rx.Record(3, qframe.BasisDiag, qframe.DoubleClick)
	rx.Record(5, qframe.BasisRect, qframe.ClickD1)
	m := BuildSift(rx)
	if len(m.Slots) != 2 || m.Slots[0] != 1 || m.Slots[1] != 5 {
		t.Fatalf("sift kept wrong slots: %v", m.Slots)
	}
}

func TestSiftRatioMatchesPaperArithmetic(t *testing.T) {
	// Paper, Section 5: with 1 % delivery and 50 % basis agreement,
	// 1000 pulses yield ~5 sifted bits ("1 photon in 200").
	p := photonics.DefaultParams()
	// Tune to ~1 % click probability: mu*T*eta = 0.01 with no darks.
	p.MeanPhotons = 0.1
	p.FiberKm = 0
	p.SystemLossDB = 0
	p.DetectorEff = 0.1
	p.DarkCountProb = 0
	l := photonics.NewLink(p, 3)

	totalPulses := 200000
	tx, rx := l.TransmitFrame(7, totalPulses)
	sm := BuildSift(rx)
	_, aliceRes, err := Respond(tx, sm)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(aliceRes.Bits.Len()) / float64(totalPulses)
	if ratio < 1.0/300 || ratio > 1.0/140 {
		t.Errorf("sift ratio = 1/%0.f, want ~1/200", 1/ratio)
	}
}

func TestRLEBeatsNaive(t *testing.T) {
	// At realistic (sparse) detection rates the RLE encoding must be
	// substantially smaller than the naive record list.
	_, rx := makeFrames(t, 5, 100000)
	m := BuildSift(rx)
	if len(m.Slots) == 0 {
		t.Skip("no detections")
	}
	rle := len(m.Encode())
	naive := len(m.EncodeNaive())
	if rle >= naive {
		t.Errorf("RLE encoding (%d bytes) not smaller than naive (%d bytes)", rle, naive)
	}
}

func TestDecodeSiftRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		{},                 // empty
		{0x80},             // truncated varint
		{1, 1, 5, 1, 1, 1}, // claims 5 detections in 1 slot
	}
	for i, p := range cases {
		if _, err := DecodeSift(p); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestDecodeSiftRejectsOutOfRangeSlot(t *testing.T) {
	m := &SiftMessage{FrameID: 1, SlotsTotal: 10}
	m.AddDetection(5, qframe.BasisRect)
	enc := m.Encode()
	// Legitimate message decodes.
	if _, err := DecodeSift(enc); err != nil {
		t.Fatalf("valid message rejected: %v", err)
	}
	// Now claim a slot beyond SlotsTotal.
	bad := &SiftMessage{FrameID: 1, SlotsTotal: 4}
	bad.AddDetection(5, qframe.BasisRect)
	if _, err := DecodeSift(bad.Encode()); err == nil {
		t.Error("out-of-range slot accepted")
	}
}

func TestRespondRejectsMismatchedFrame(t *testing.T) {
	tx := qframe.NewTxFrame(1, 4)
	m := &SiftMessage{FrameID: 2, SlotsTotal: 4}
	if _, _, err := Respond(tx, m); err == nil {
		t.Error("frame mismatch accepted")
	}
	m = &SiftMessage{FrameID: 1, SlotsTotal: 5}
	if _, _, err := Respond(tx, m); err == nil {
		t.Error("slot count mismatch accepted")
	}
}

func TestApplyRejectsBogusResponse(t *testing.T) {
	rx := qframe.NewRxFrame(1, 4)
	rx.Record(0, qframe.BasisRect, qframe.ClickD0)
	m := BuildSift(rx)
	// Wrong frame.
	r := &Response{FrameID: 9}
	if _, err := Apply(rx, m, r); err == nil {
		t.Error("wrong-frame response accepted")
	}
	// Wrong keep length.
	resp, _, err := Respond(qframe.NewTxFrame(1, 4), m)
	if err != nil {
		t.Fatal(err)
	}
	resp.Keep.Append(1)
	if _, err := Apply(rx, m, resp); err == nil {
		t.Error("wrong-length keep accepted")
	}
	// A sift message that does not correspond to the frame.
	other := &SiftMessage{FrameID: 1, SlotsTotal: 4}
	other.AddDetection(2, qframe.BasisRect)
	resp2, _, err := Respond(qframe.NewTxFrame(1, 4), other)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(rx, other, resp2); err == nil {
		t.Error("mismatched sift message accepted")
	}
}

func TestEmptyFrameSiftsToNothing(t *testing.T) {
	tx := qframe.NewTxFrame(3, 100)
	rx := qframe.NewRxFrame(3, 100)
	m := BuildSift(rx)
	dec, err := DecodeSift(m.Encode())
	if err != nil {
		t.Fatalf("empty sift round trip: %v", err)
	}
	resp, aliceRes, err := Respond(tx, dec)
	if err != nil {
		t.Fatal(err)
	}
	bobRes, err := Apply(rx, m, resp)
	if err != nil {
		t.Fatal(err)
	}
	if aliceRes.Bits.Len() != 0 || bobRes.Bits.Len() != 0 {
		t.Error("empty frame produced sifted bits")
	}
}

// Property: encode/decode round-trips arbitrary well-formed messages.
func TestPropertySiftCodecRoundTrip(t *testing.T) {
	f := func(frameID uint64, raw []uint16, basisBits []byte) bool {
		// Build strictly increasing slot list from raw.
		seen := map[uint32]bool{}
		var slots []uint32
		for _, r := range raw {
			s := uint32(r)
			if !seen[s] {
				seen[s] = true
				slots = append(slots, s)
			}
		}
		// sort
		for i := 1; i < len(slots); i++ {
			for j := i; j > 0 && slots[j-1] > slots[j]; j-- {
				slots[j-1], slots[j] = slots[j], slots[j-1]
			}
		}
		m := &SiftMessage{FrameID: frameID, SlotsTotal: 1 << 16}
		for i, s := range slots {
			b := qframe.BasisRect
			if len(basisBits) > 0 && basisBits[i%len(basisBits)]&1 == 1 {
				b = qframe.BasisDiag
			}
			m.AddDetection(s, b)
		}
		dec, err := DecodeSift(m.Encode())
		if err != nil {
			return false
		}
		if dec.FrameID != m.FrameID || dec.SlotsTotal != m.SlotsTotal ||
			len(dec.Slots) != len(m.Slots) {
			return false
		}
		for i := range m.Slots {
			if dec.Slots[i] != m.Slots[i] || dec.Bases.Get(i) != m.Bases.Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSiftEncode(b *testing.B) {
	p := photonics.DefaultParams()
	l := photonics.NewLink(p, 1)
	_, rx := l.TransmitFrame(1, 100000)
	m := BuildSift(rx)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Encode()
	}
}

func BenchmarkSiftFullTransaction(b *testing.B) {
	p := photonics.DefaultParams()
	l := photonics.NewLink(p, 1)
	tx, rx := l.TransmitFrame(1, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := BuildSift(rx)
		dec, _ := DecodeSift(m.Encode())
		resp, _, err := Respond(tx, dec)
		if err != nil {
			b.Fatal(err)
		}
		rd, _ := DecodeResponse(resp.Encode())
		if _, err := Apply(rx, m, rd); err != nil {
			b.Fatal(err)
		}
	}
}
