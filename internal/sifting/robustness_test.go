package sifting

import (
	"testing"
	"testing/quick"

	"qkd/internal/rng"
)

// Decoders face attacker-controlled bytes from the public channel; they
// must reject garbage with errors, never panic or over-allocate.

func TestDecodeSiftNeverPanics(t *testing.T) {
	f := func(p []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		m, err := DecodeSift(p)
		if err == nil && m == nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeResponseNeverPanics(t *testing.T) {
	f := func(p []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		r, err := DecodeResponse(p)
		if err == nil && r == nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeSiftBitflipsRejectedOrConsistent(t *testing.T) {
	// Flipping bytes of a valid encoding must either fail decoding or
	// produce a message that still satisfies the structural invariants
	// (strictly increasing, in-range slots).
	gen := rng.NewSplitMix64(9)
	m := &SiftMessage{FrameID: 3, SlotsTotal: 1000}
	for s := 20; s < 1000; s += 37 {
		m.AddDetection(uint32(s), 0)
	}
	valid := m.Encode()
	for trial := 0; trial < 300; trial++ {
		p := append([]byte(nil), valid...)
		p[gen.Intn(len(p))] ^= byte(1 << gen.Intn(8))
		dec, err := DecodeSift(p)
		if err != nil {
			continue
		}
		prev := int64(-1)
		for _, s := range dec.Slots {
			if int64(s) <= prev || int(s) >= dec.SlotsTotal {
				t.Fatalf("trial %d: decoder accepted inconsistent slots", trial)
			}
			prev = int64(s)
		}
	}
}

func TestDecodeSiftRejectsGiantClaims(t *testing.T) {
	// Regression for the allocation bomb the property test uncovered: a
	// tiny payload claiming billions of detections must be rejected
	// before allocation, not make()d.
	var p []byte
	p = append(p, 0x01)         // frame id
	p = appendUvarint(p, 1<<40) // slots total
	p = appendUvarint(p, 1<<39) // detection count
	if _, err := DecodeSift(p); err == nil {
		t.Fatal("giant claim accepted")
	}
}

func appendUvarint(p []byte, v uint64) []byte {
	for v >= 0x80 {
		p = append(p, byte(v)|0x80)
		v >>= 7
	}
	return append(p, byte(v))
}
