package flow

import (
	"testing"
	"time"

	"qkd/internal/kms"
	"qkd/internal/rng"
)

// BenchmarkFlow_ControllerTick measures the foreground control loop
// against a live kms.Service: one Tick is a pressure sample, a
// hysteresis decision, a window update and a demand re-registration —
// the per-batch overhead every flow-controlled consumer pays.
func BenchmarkFlow_ControllerTick(b *testing.B) {
	svc := kms.New(kms.Config{})
	defer svc.Close()
	svc.Ingest(rng.NewSplitMix64(1).Bits(1 << 16))
	ctl := NewController("bench/otp", kms.ClassOTP, svc, Config{})
	defer ctl.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctl.Tick()
	}
}

// BenchmarkFlow_BackgroundTick measures the LEDBAT-style loop: a
// foreground-demand read, a pressure sample, a projected-wait probe and
// the proportional window update.
func BenchmarkFlow_BackgroundTick(b *testing.B) {
	svc := kms.New(kms.Config{})
	defer svc.Close()
	svc.Ingest(rng.NewSplitMix64(2).Bits(1 << 16))
	bg := NewBackground("bench/auth", svc, BackgroundConfig{})
	defer bg.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bg.Tick()
	}
}

// BenchmarkFlow_MarkLatency measures how long the loop takes to notice
// congestion: from a pressure step (a queued backlog appearing on an
// idle service) to the controller observing a set mark. Reported as
// ns/op over repeated step-response cycles, plus a sampled p99.
func BenchmarkFlow_MarkLatency(b *testing.B) {
	sig := &stepSignals{}
	ctl := NewController("bench/mark", kms.ClassRekey, sig, Config{})
	defer ctl.Close()
	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sig.pressure = 2.0
		start := time.Now()
		for !ctl.Marked() {
			ctl.Tick()
		}
		lat = append(lat, time.Since(start))
		// Step back down and let the hysteresis clear before the next
		// cycle.
		sig.pressure = 0
		for ctl.Marked() {
			ctl.Tick()
		}
	}
	b.StopTimer()
	if len(lat) > 0 {
		idx := len(lat) * 99 / 100
		if idx >= len(lat) {
			idx = len(lat) - 1
		}
		sortDurations(lat)
		b.ReportMetric(float64(lat[idx].Nanoseconds()), "p99-ns")
	}
}

// stepSignals is a zero-cost signal source for the mark-latency step
// response: the benchmark drives pressure directly.
type stepSignals struct{ pressure float64 }

func (s *stepSignals) Pressure() float64 { return s.pressure }
func (s *stepSignals) ProjectedWait(kms.Class, int) (time.Duration, bool) {
	return 0, true
}
func (s *stepSignals) RegisterDemand(string, kms.Class, int) {}
func (s *stepSignals) RegisteredDemand(kms.Class) int        { return 0 }

func sortDurations(xs []time.Duration) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
