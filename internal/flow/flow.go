// Package flow closes the key-replenishment loop. Everything below it
// is open-loop: distillation deposits at whatever rate the link yields,
// the KDS sheds low classes on overload (ErrOverload), and consumers
// block or fail. This package adds the control plane on top — per-stream
// credit controllers in the style of the congestion-control canon:
//
//   - [Controller] is the foreground (OTP / rekey) side: it registers a
//     windowed demand with the KDS, samples ECN-style early-pressure
//     marks derived from kms.Pressure() / projected queue wait, and
//     adapts the window AIMD-fashion — additive increase while
//     unmarked (weighted Elastic-style, growing faster the further the
//     window sits below its cap), multiplicative decrease on a mark or
//     a hard shed. Marks carry hysteresis (MarkHigh / MarkLow) so a
//     pressure signal hovering at the threshold does not flap the
//     window every sample, the same reason DCTCP smooths its fraction
//     of marked packets.
//
//   - [Background] is the LEDBAT-style background class for auth-pad
//     replenishment: it measures queueing delay (the KDS projected
//     wait, the analog of LEDBAT's one-way delay probe) against a
//     target, ramps while the queue is empty, and yields hard — one
//     multiplicative cut per sample — the moment foreground demand or
//     pressure appears. Auth pads defend future conversations; they
//     must never cost a running SA its OTP bits.
//
// Windows are advisory credit, not reservation: a controller's window
// is how many bits its consumer should request over the next window
// interval, and the registered aggregate is what producers size work
// by — qnet transports stripe toward registered demand instead of a
// fixed request, the vpn rekeyer paces batch bursts off marks, and
// distillation biases its batch split toward the classes flow reports
// starved.
package flow

import (
	"math"
	"sync"
	"time"

	"qkd/internal/kms"
)

// Signals is the congestion-signal surface a controller samples each
// tick. *kms.Service implements it; tests substitute a scripted fake.
type Signals interface {
	// Pressure is the normalized early-warning signal: 0 idle, >= 1
	// means the next rekey-class request would be shed.
	Pressure() float64
	// ProjectedWait estimates the queueing delay a class-c request of
	// `bits` would face; known is false before capacity is measured.
	ProjectedWait(c kms.Class, bits int) (wait time.Duration, known bool)
	// RegisterDemand records the controller's current window with the
	// delivery service; bits <= 0 clears it.
	RegisterDemand(name string, c kms.Class, bits int)
	// RegisteredDemand sums windowed demand for a class (all classes
	// when c < 0).
	RegisteredDemand(c kms.Class) int
}

// Config tunes a foreground Controller.
type Config struct {
	// MinWindow / MaxWindow bound the credit window in bits.
	// Defaults 256 / 1 << 20.
	MinWindow int
	MaxWindow int
	// Increase is the additive growth per unmarked tick, in bits,
	// before Elastic weighting. Default MinWindow.
	Increase int
	// Beta is the multiplicative-decrease factor applied on a marked
	// tick (0 < Beta < 1). Default 0.5.
	Beta float64
	// MarkHigh / MarkLow are the hysteresis thresholds on the pressure
	// signal: the mark sets at >= MarkHigh and clears only at
	// <= MarkLow. Defaults 0.75 / 0.35.
	MarkHigh float64
	MarkLow  float64
}

func (c Config) withDefaults() Config {
	if c.MinWindow <= 0 {
		c.MinWindow = 256
	}
	if c.MaxWindow < c.MinWindow {
		c.MaxWindow = 1 << 20
	}
	if c.Increase <= 0 {
		c.Increase = c.MinWindow
	}
	if c.Beta <= 0 || c.Beta >= 1 {
		c.Beta = 0.5
	}
	if c.MarkHigh <= 0 {
		c.MarkHigh = 0.75
	}
	if c.MarkLow <= 0 || c.MarkLow >= c.MarkHigh {
		c.MarkLow = c.MarkHigh / 2
	}
	return c
}

// Stats is a controller activity snapshot.
type Stats struct {
	Ticks     uint64
	Marks     uint64 // ticks sampled while marked
	MarkSets  uint64 // unmarked -> marked transitions
	Increases uint64
	Decreases uint64
	Sheds     uint64 // hard ErrOverload feedback from the consumer
	Yields    uint64 // Background only: cuts taken for foreground
}

// Controller is one stream's foreground credit window.
type Controller struct {
	cfg   Config
	sig   Signals
	name  string
	class kms.Class

	mu     sync.Mutex
	window float64
	marked bool
	stats  Stats
}

// NewController builds a controller for the named stream in class c and
// registers its initial window with the signal source.
func NewController(name string, c kms.Class, sig Signals, cfg Config) *Controller {
	cfg = cfg.withDefaults()
	ctl := &Controller{cfg: cfg, sig: sig, name: name, class: c, window: float64(cfg.MinWindow)}
	sig.RegisterDemand(name, c, cfg.MinWindow)
	return ctl
}

// Window returns the current credit window in bits: how much the
// consumer should request over its next window interval.
func (ctl *Controller) Window() int {
	ctl.mu.Lock()
	defer ctl.mu.Unlock()
	return int(ctl.window)
}

// Marked reports the hysteresis mark state as of the last tick.
func (ctl *Controller) Marked() bool {
	ctl.mu.Lock()
	defer ctl.mu.Unlock()
	return ctl.marked
}

// Stats returns a snapshot of controller activity.
func (ctl *Controller) Stats() Stats {
	ctl.mu.Lock()
	defer ctl.mu.Unlock()
	return ctl.stats
}

// Tick samples the congestion signal once, updates the mark state
// through the hysteresis band, adapts the window, and re-registers the
// demand. It returns the new window. Call it once per window interval
// (e.g. per consumer batch).
func (ctl *Controller) Tick() int {
	p := ctl.sig.Pressure()
	ctl.mu.Lock()
	ctl.stats.Ticks++
	switch {
	case p >= ctl.cfg.MarkHigh:
		if !ctl.marked {
			ctl.stats.MarkSets++
		}
		ctl.marked = true
	case p <= ctl.cfg.MarkLow:
		ctl.marked = false
	}
	if ctl.marked {
		ctl.stats.Marks++
		ctl.decreaseLocked()
	} else {
		ctl.increaseLocked()
	}
	w := int(ctl.window)
	ctl.mu.Unlock()
	ctl.sig.RegisterDemand(ctl.name, ctl.class, w)
	return w
}

// OnShed feeds back a hard ErrOverload the consumer hit despite the
// window: the loop underestimated, so cut immediately and set the mark
// without waiting for the next pressure sample.
func (ctl *Controller) OnShed() {
	ctl.mu.Lock()
	ctl.stats.Sheds++
	if !ctl.marked {
		ctl.stats.MarkSets++
	}
	ctl.marked = true
	ctl.decreaseLocked()
	w := int(ctl.window)
	ctl.mu.Unlock()
	ctl.sig.RegisterDemand(ctl.name, ctl.class, w)
}

// Close clears the controller's registered demand.
func (ctl *Controller) Close() {
	ctl.sig.RegisterDemand(ctl.name, ctl.class, 0)
}

// increaseLocked grows the window Elastic-style: the additive step is
// weighted by sqrt(MaxWindow/window), so a freshly cut window recovers
// fast while one near its cap creeps — Elastic-TCP's window-correlated
// weighting function, adapted to a credit window.
func (ctl *Controller) increaseLocked() {
	weight := math.Sqrt(float64(ctl.cfg.MaxWindow) / ctl.window)
	if weight < 1 {
		weight = 1
	}
	ctl.window += float64(ctl.cfg.Increase) * weight
	if max := float64(ctl.cfg.MaxWindow); ctl.window > max {
		ctl.window = max
	}
	ctl.stats.Increases++
}

func (ctl *Controller) decreaseLocked() {
	ctl.window *= ctl.cfg.Beta
	if min := float64(ctl.cfg.MinWindow); ctl.window < min {
		ctl.window = min
	}
	ctl.stats.Decreases++
}

// BackgroundConfig tunes a LEDBAT-style background controller.
type BackgroundConfig struct {
	// Target is the queueing-delay target: the controller ramps while
	// the projected wait sits below it and backs off proportionally
	// above it. Default 25ms.
	Target time.Duration
	// Gain scales the proportional controller (window change per tick
	// = Gain * Increase * off-target fraction). Default 1.
	Gain float64
	// MinWindow / MaxWindow bound the window in bits. Defaults
	// 64 / 1 << 18.
	MinWindow int
	MaxWindow int
	// Increase is the base ramp step in bits. Default MinWindow.
	Increase int
	// YieldBeta is the multiplicative cut taken per tick while
	// foreground demand or pressure is active (0 < YieldBeta < 1).
	// Default 0.25 — background yields in one or two ticks, the LEDBAT
	// contract.
	YieldBeta float64
	// ProbeBits sizes the projected-wait probe. Default MinWindow.
	ProbeBits int
}

func (c BackgroundConfig) withDefaults() BackgroundConfig {
	if c.Target <= 0 {
		c.Target = 25 * time.Millisecond
	}
	if c.Gain <= 0 {
		c.Gain = 1
	}
	if c.MinWindow <= 0 {
		c.MinWindow = 64
	}
	if c.MaxWindow < c.MinWindow {
		c.MaxWindow = 1 << 18
	}
	if c.Increase <= 0 {
		c.Increase = c.MinWindow
	}
	if c.YieldBeta <= 0 || c.YieldBeta >= 1 {
		c.YieldBeta = 0.25
	}
	if c.ProbeBits <= 0 {
		c.ProbeBits = c.MinWindow
	}
	return c
}

// Background is the LEDBAT-style controller for auth-pad replenishment
// (ClassAuth). It measures queueing delay rather than reacting to
// marks, and yields multiplicatively whenever foreground (OTP or
// rekey) demand is registered or pressure is non-trivial.
type Background struct {
	cfg  BackgroundConfig
	sig  Signals
	name string

	mu     sync.Mutex
	window float64
	stats  Stats
}

// NewBackground builds a background controller for the named auth
// stream and registers its initial window.
func NewBackground(name string, sig Signals, cfg BackgroundConfig) *Background {
	cfg = cfg.withDefaults()
	bg := &Background{cfg: cfg, sig: sig, name: name, window: float64(cfg.MinWindow)}
	sig.RegisterDemand(name, kms.ClassAuth, cfg.MinWindow)
	return bg
}

// Window returns the current background credit window in bits.
func (bg *Background) Window() int {
	bg.mu.Lock()
	defer bg.mu.Unlock()
	return int(bg.window)
}

// Stats returns a snapshot of controller activity.
func (bg *Background) Stats() Stats {
	bg.mu.Lock()
	defer bg.mu.Unlock()
	return bg.stats
}

// Tick samples the delay and foreground signals once, adapts the
// window, re-registers demand, and returns the new window.
func (bg *Background) Tick() int {
	// Foreground-yield check first: any registered OTP or rekey demand,
	// or pressure beyond idle noise, and background cuts immediately —
	// before the delay controller gets a vote.
	foreground := bg.sig.RegisteredDemand(kms.ClassOTP) + bg.sig.RegisteredDemand(kms.ClassRekey)
	pressure := bg.sig.Pressure()
	wait, known := bg.sig.ProjectedWait(kms.ClassAuth, bg.probeBits())

	bg.mu.Lock()
	bg.stats.Ticks++
	switch {
	case foreground > 0 || pressure > 0.1:
		bg.window *= bg.cfg.YieldBeta
		if min := float64(bg.cfg.MinWindow); bg.window < min {
			bg.window = min
		}
		bg.stats.Yields++
		bg.stats.Decreases++
	case known:
		// LEDBAT proportional controller: off-target fraction in
		// [-inf, 1] scales the ramp. At wait == 0 this is a full step
		// up; past the target it turns negative and shrinks the window.
		off := (float64(bg.cfg.Target) - float64(wait)) / float64(bg.cfg.Target)
		bg.window += bg.cfg.Gain * float64(bg.cfg.Increase) * off
		switch {
		case bg.window > float64(bg.cfg.MaxWindow):
			bg.window = float64(bg.cfg.MaxWindow)
		case bg.window < float64(bg.cfg.MinWindow):
			bg.window = float64(bg.cfg.MinWindow)
		}
		if off >= 0 {
			bg.stats.Increases++
		} else {
			bg.stats.Decreases++
		}
	default:
		// Capacity unmeasured: hold at the floor rather than probing a
		// link that has never delivered.
		bg.window = float64(bg.cfg.MinWindow)
	}
	w := int(bg.window)
	bg.mu.Unlock()
	bg.sig.RegisterDemand(bg.name, kms.ClassAuth, w)
	return w
}

func (bg *Background) probeBits() int {
	bg.mu.Lock()
	defer bg.mu.Unlock()
	if w := int(bg.window); w > bg.cfg.ProbeBits {
		return w
	}
	return bg.cfg.ProbeBits
}

// Close clears the controller's registered demand.
func (bg *Background) Close() {
	bg.sig.RegisterDemand(bg.name, kms.ClassAuth, 0)
}
