package flow

import (
	"sync"
	"testing"
	"time"

	"qkd/internal/kms"
	"qkd/internal/rng"
)

// fakeSignals is a scripted signal source: tests set the pressure and
// projected wait directly and observe the registered demand.
type fakeSignals struct {
	mu       sync.Mutex
	pressure float64
	wait     time.Duration
	known    bool
	demand   map[string]int
	byClass  [kms.NumClasses]int
}

func newFakeSignals() *fakeSignals {
	return &fakeSignals{known: true, demand: make(map[string]int)}
}

func (f *fakeSignals) set(pressure float64, wait time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.pressure = pressure
	f.wait = wait
}

func (f *fakeSignals) Pressure() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.pressure
}

func (f *fakeSignals) ProjectedWait(c kms.Class, bits int) (time.Duration, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.wait, f.known
}

func (f *fakeSignals) RegisterDemand(name string, c kms.Class, bits int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	// Entries never change class in these tests, so the old bits come
	// off the same class aggregate.
	if old, ok := f.demand[name]; ok {
		f.byClass[c] -= old
	}
	if bits <= 0 {
		delete(f.demand, name)
		return
	}
	f.demand[name] = bits
	f.byClass[c] += bits
}

func (f *fakeSignals) RegisteredDemand(c kms.Class) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c >= 0 && c < kms.NumClasses {
		return f.byClass[c]
	}
	total := 0
	for _, b := range f.byClass {
		total += b
	}
	return total
}

func TestControllerWindowGrowsWhileUnmarked(t *testing.T) {
	sig := newFakeSignals()
	ctl := NewController("otp", kms.ClassOTP, sig, Config{MinWindow: 256, MaxWindow: 1 << 16})
	defer ctl.Close()
	if w := ctl.Window(); w != 256 {
		t.Fatalf("initial window = %d, want MinWindow 256", w)
	}
	prev := ctl.Window()
	var firstStep, lastStep int
	for i := 0; i < 200; i++ {
		w := ctl.Tick()
		if w < prev {
			t.Fatalf("tick %d: window shrank %d -> %d with zero pressure", i, prev, w)
		}
		if i == 0 {
			firstStep = w - prev
		}
		lastStep = w - prev
		prev = w
	}
	if prev != 1<<16 {
		t.Fatalf("window after 200 unmarked ticks = %d, want cap %d", prev, 1<<16)
	}
	// Elastic weighting: growth from the floor outpaces growth near the
	// cap (where the weight has decayed toward 1).
	if firstStep <= lastStep {
		t.Fatalf("first step %d <= last step %d: growth not window-weighted", firstStep, lastStep)
	}
	// The window is registered as demand.
	if d := sig.RegisteredDemand(kms.ClassOTP); d != prev {
		t.Fatalf("registered demand = %d, want window %d", d, prev)
	}
}

func TestControllerDecaysOnMarks(t *testing.T) {
	sig := newFakeSignals()
	ctl := NewController("otp", kms.ClassOTP, sig, Config{MinWindow: 256, MaxWindow: 1 << 16, Beta: 0.5})
	defer ctl.Close()
	for i := 0; i < 200; i++ {
		ctl.Tick()
	}
	w0 := ctl.Window()
	sig.set(2.0, 0) // hard overload
	w1 := ctl.Tick()
	if w1 != w0/2 {
		t.Fatalf("marked tick: window %d -> %d, want multiplicative halving to %d", w0, w1, w0/2)
	}
	for i := 0; i < 20; i++ {
		ctl.Tick()
	}
	if w := ctl.Window(); w != 256 {
		t.Fatalf("window under sustained marks = %d, want floor 256", w)
	}
	st := ctl.Stats()
	if st.MarkSets != 1 {
		t.Fatalf("MarkSets = %d, want 1 (one continuous marked episode)", st.MarkSets)
	}
	if st.Marks != 21 {
		t.Fatalf("Marks = %d, want 21", st.Marks)
	}
}

func TestControllerMarkHysteresis(t *testing.T) {
	sig := newFakeSignals()
	ctl := NewController("otp", kms.ClassOTP, sig, Config{
		MinWindow: 256, MaxWindow: 1 << 16, MarkHigh: 0.75, MarkLow: 0.35,
	})
	defer ctl.Close()
	// Below MarkHigh: no mark.
	sig.set(0.7, 0)
	ctl.Tick()
	if ctl.Marked() {
		t.Fatal("marked at pressure 0.7 < MarkHigh 0.75")
	}
	// Cross MarkHigh: mark sets.
	sig.set(0.8, 0)
	ctl.Tick()
	if !ctl.Marked() {
		t.Fatal("not marked at pressure 0.8 >= MarkHigh")
	}
	// Fall into the hysteresis band: mark must HOLD (this is the
	// anti-flap property).
	sig.set(0.5, 0)
	w0 := ctl.Window()
	ctl.Tick()
	if !ctl.Marked() {
		t.Fatal("mark cleared inside the hysteresis band (0.35, 0.75)")
	}
	if w := ctl.Window(); w >= w0 {
		t.Fatalf("window grew (%d -> %d) while the mark held", w0, w)
	}
	// Fall below MarkLow: mark clears, growth resumes.
	sig.set(0.3, 0)
	ctl.Tick()
	if ctl.Marked() {
		t.Fatal("mark held at pressure 0.3 <= MarkLow 0.35")
	}
	w1 := ctl.Window()
	ctl.Tick()
	if w := ctl.Window(); w <= w1 {
		t.Fatalf("window did not resume growth after the mark cleared (%d -> %d)", w1, w)
	}
	st := ctl.Stats()
	if st.MarkSets != 1 {
		t.Fatalf("MarkSets = %d, want 1: the band dip must not re-set the mark", st.MarkSets)
	}
}

func TestControllerOnShedCutsImmediately(t *testing.T) {
	sig := newFakeSignals()
	ctl := NewController("rekey", kms.ClassRekey, sig, Config{MinWindow: 256, MaxWindow: 1 << 16, Beta: 0.5})
	defer ctl.Close()
	for i := 0; i < 100; i++ {
		ctl.Tick()
	}
	w0 := ctl.Window()
	ctl.OnShed()
	if w := ctl.Window(); w != w0/2 {
		t.Fatalf("OnShed: window %d -> %d, want %d", w0, w, w0/2)
	}
	if !ctl.Marked() {
		t.Fatal("OnShed did not set the mark")
	}
	if d := sig.RegisteredDemand(kms.ClassRekey); d != ctl.Window() {
		t.Fatalf("registered demand %d != window %d after shed", d, ctl.Window())
	}
}

func TestBackgroundRampsTowardTargetDelay(t *testing.T) {
	sig := newFakeSignals()
	bg := NewBackground("auth", sig, BackgroundConfig{
		Target: 20 * time.Millisecond, MinWindow: 64, MaxWindow: 1 << 14,
	})
	defer bg.Close()
	// Empty queue, no foreground: full-step ramp to the cap.
	sig.set(0, 0)
	for i := 0; i < 300; i++ {
		bg.Tick()
	}
	if w := bg.Window(); w != 1<<14 {
		t.Fatalf("window with idle queue = %d, want cap %d", w, 1<<14)
	}
	// Past-target delay shrinks the window proportionally.
	sig.set(0.05, 60*time.Millisecond) // 3x target
	w0 := bg.Window()
	bg.Tick()
	if w := bg.Window(); w >= w0 {
		t.Fatalf("window did not shrink at 3x target delay (%d -> %d)", w0, w)
	}
	st := bg.Stats()
	if st.Yields != 0 {
		t.Fatalf("Yields = %d, want 0: delay control is not a foreground yield", st.Yields)
	}
}

func TestBackgroundYieldsToForeground(t *testing.T) {
	sig := newFakeSignals()
	bg := NewBackground("auth", sig, BackgroundConfig{
		Target: 20 * time.Millisecond, MinWindow: 64, MaxWindow: 1 << 14, YieldBeta: 0.25,
	})
	defer bg.Close()
	sig.set(0, 0)
	for i := 0; i < 300; i++ {
		bg.Tick()
	}
	w0 := bg.Window()
	// Foreground OTP demand appears: background must cut multiplicatively
	// even though its own delay signal is still clean.
	ctl := NewController("otp", kms.ClassOTP, sig, Config{MinWindow: 1024})
	defer ctl.Close()
	bg.Tick()
	if w := bg.Window(); w != w0/4 {
		t.Fatalf("yield tick: window %d -> %d, want quarter %d", w0, w, w0/4)
	}
	for i := 0; i < 10; i++ {
		bg.Tick()
	}
	if w := bg.Window(); w != 64 {
		t.Fatalf("window under sustained foreground = %d, want floor 64", w)
	}
	if y := bg.Stats().Yields; y != 11 {
		t.Fatalf("Yields = %d, want 11", y)
	}
	// Foreground clears: the ramp recovers.
	ctl.Close()
	for i := 0; i < 300; i++ {
		bg.Tick()
	}
	if w := bg.Window(); w != 1<<14 {
		t.Fatalf("window after foreground cleared = %d, want cap %d", w, 1<<14)
	}
}

func TestBackgroundYieldsOnPressureAlone(t *testing.T) {
	// Pressure without registered foreground demand (open-loop consumers
	// hammering the KDS directly) must also trigger the yield.
	sig := newFakeSignals()
	bg := NewBackground("auth", sig, BackgroundConfig{MinWindow: 64, MaxWindow: 1 << 14})
	defer bg.Close()
	sig.set(0, 0)
	for i := 0; i < 300; i++ {
		bg.Tick()
	}
	w0 := bg.Window()
	sig.set(0.5, 0)
	bg.Tick()
	if w := bg.Window(); w >= w0 {
		t.Fatalf("no yield on pressure 0.5 (%d -> %d)", w0, w)
	}
	if y := bg.Stats().Yields; y != 1 {
		t.Fatalf("Yields = %d, want 1", y)
	}
}

func TestBackgroundHoldsFloorWhileCapacityUnknown(t *testing.T) {
	sig := newFakeSignals()
	sig.known = false
	bg := NewBackground("auth", sig, BackgroundConfig{MinWindow: 64, MaxWindow: 1 << 14})
	defer bg.Close()
	for i := 0; i < 50; i++ {
		bg.Tick()
	}
	if w := bg.Window(); w != 64 {
		t.Fatalf("window with unmeasured capacity = %d, want floor 64", w)
	}
}

func TestControllerAgainstLiveKDS(t *testing.T) {
	// The interface contract end to end: a real kms.Service as the
	// signal source. Saturate the scheduler with an unserved backlog so
	// Pressure() >= 1, and the controller must cut; drain it and the
	// controller must recover.
	svc := kms.New(kms.Config{ShedDelay: 10 * time.Millisecond})
	defer svc.Close()
	ctl := NewController("otp/ctl", kms.ClassOTP, svc, Config{MinWindow: 256, MaxWindow: 1 << 16})
	defer ctl.Close()
	for i := 0; i < 50; i++ {
		ctl.Tick()
	}
	w0 := ctl.Window()
	if w0 <= 256 {
		t.Fatalf("window did not grow against an idle service: %d", w0)
	}
	otp, err := svc.NewStream("otp", 64, kms.ClassOTP)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		otp.AllocateWait(8, 5*time.Second, nil)
		close(done)
	}()
	for svc.Pressure() < 1 {
		time.Sleep(time.Millisecond)
	}
	ctl.Tick()
	if w := ctl.Window(); w >= w0 {
		t.Fatalf("window did not cut under live backlog (%d -> %d)", w0, w)
	}
	if !ctl.Marked() {
		t.Fatal("controller unmarked under live backlog")
	}
	svc.Ingest(rng.NewSplitMix64(7).Bits(1024))
	<-done
}
