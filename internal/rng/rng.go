// Package rng provides the deterministic randomness primitives the QKD
// protocol suite depends on: a 32-bit Galois LFSR (the paper uses
// LFSR-derived pseudo-random subsets in its Cascade variant, identified
// on the wire by their 32-bit seed), and a SplitMix64 PRNG used to drive
// the photonic simulator reproducibly.
//
// These generators are NOT cryptographically secure, and are not meant
// to be: the LFSR subsets are public protocol state (their seeds are
// sent in the clear), and the simulator randomness models physics, not
// secrets. Secret material (basis choices, OTP pads in production use)
// would come from hardware randomness; the simulator substitutes seeded
// PRNG so experiments are reproducible.
package rng

import (
	"math"

	"qkd/internal/bitarray"
)

// LFSR32 is a 32-bit Galois linear-feedback shift register with the
// maximal-length taps x^32 + x^22 + x^2 + x^1 + 1 (taps 0xC0000401 in
// Galois form). Seeded with any nonzero value it has period 2^32-1.
//
// The paper's Cascade variant defines each parity subset as "a
// pseudo-random bit string from a Linear-Feedback Shift Register ...
// identified by a 32-bit seed for the LFSR"; Mask reproduces that.
type LFSR32 struct {
	state uint32
}

// galoisTaps is the feedback mask for x^32+x^22+x^2+x+1.
const galoisTaps = 0xC0000401

// NewLFSR32 returns an LFSR seeded with seed. A zero seed would lock
// the register, so it is mapped to 1.
func NewLFSR32(seed uint32) *LFSR32 {
	if seed == 0 {
		seed = 1
	}
	return &LFSR32{state: seed}
}

// Next advances the register one step and returns the output bit.
func (l *LFSR32) Next() int {
	out := int(l.state & 1)
	l.state >>= 1
	if out == 1 {
		l.state ^= galoisTaps
	}
	return out
}

// State returns the current register contents.
func (l *LFSR32) State() uint32 { return l.state }

// The Galois update is linear over GF(2), so eight steps collapse into
// a table lookup: the next eight output bits and the eight-step state
// transition both depend only on the low byte of the state (a bit at
// position p >= 8 cannot reach the output tap, nor trigger feedback,
// within eight shifts). lfsrOut[b] holds the eight output bits produced
// from a state with low byte b; lfsrAdv[b] the feedback the eight steps
// fold into the shifted state: F^8(s) = (s >> 8) ^ lfsrAdv[s & 0xff].
var (
	lfsrOut [256]uint8
	lfsrAdv [256]uint32
)

func init() {
	for b := 0; b < 256; b++ {
		l := LFSR32{state: uint32(b)}
		var out uint8
		for i := 0; i < 8; i++ {
			out |= uint8(l.Next()) << i
		}
		lfsrOut[b] = out
		lfsrAdv[b] = l.state
	}
}

// NextWord advances the register 64 steps and returns the 64 output
// bits, LSB-first — the word-batched equivalent of 64 calls to Next.
func (l *LFSR32) NextWord() uint64 {
	s := l.state
	var w uint64
	for i := 0; i < 8; i++ {
		b := s & 0xff
		w |= uint64(lfsrOut[b]) << (8 * i)
		s = s>>8 ^ lfsrAdv[b]
	}
	l.state = s
	return w
}

// Mask generates an n-bit pseudo-random mask: bit i is the i-th output
// of the LFSR. Two parties running NewLFSR32(seed).Mask(n) with the
// same seed and n obtain identical masks, which is how the BBN Cascade
// variant communicates subsets by seed alone.
func Mask(seed uint32, n int) *bitarray.BitArray {
	return bitarray.FromWords(MaskWords(seed, n, nil), n)
}

// MaskWords is Mask in raw word form, 64 bits per step: it fills (and
// returns) dst with ceil(n/64) words of LFSR output, allocating only
// when dst lacks capacity. Bits past n in the final word are zeroed.
// Callers that recycle mask buffers across Cascade rounds use this to
// keep subset generation allocation-free.
func MaskWords(seed uint32, n int, dst []uint64) []uint64 {
	words := (n + 63) / 64
	if cap(dst) < words {
		dst = make([]uint64, words)
	}
	dst = dst[:words]
	l := NewLFSR32(seed)
	for i := range dst {
		dst[i] = l.NextWord()
	}
	if r := uint(n) & 63; r != 0 && words > 0 {
		dst[words-1] &= (1 << r) - 1
	}
	return dst
}

// SplitMix64 is a tiny, fast, well-distributed 64-bit PRNG
// (Steele, Lea, Flood 2014). It backs all simulator randomness.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next 64 random bits.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint32 returns 32 random bits.
func (s *SplitMix64) Uint32() uint32 { return uint32(s.Uint64() >> 32) }

// Bit returns a single random bit as 0 or 1.
func (s *SplitMix64) Bit() int { return int(s.Uint64() >> 63) }

// Float64 returns a uniform value in [0, 1).
func (s *SplitMix64) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *SplitMix64) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	// Rejection sampling to avoid modulo bias.
	max := (1 << 63) - (1<<63)%uint64(n)
	for {
		v := s.Uint64() >> 1
		if v < max {
			return int(v % uint64(n))
		}
	}
}

// Poisson draws from a Poisson distribution with mean lambda using
// Knuth's method, which is exact and fast for the small means used in
// weak-coherent pulse simulation (mu ~ 0.1).
func (s *SplitMix64) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	// For the large means that can arise in bright-pulse modelling,
	// fall back to a normal approximation to keep this O(1).
	if lambda > 30 {
		k := int(lambda + s.normFloat()*math.Sqrt(lambda) + 0.5)
		if k < 0 {
			k = 0
		}
		return k
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Binomial draws the number of successes in n independent trials of
// probability p. The batched photonics engine uses it to draw aggregate
// per-frame click totals instead of per-pulse coin flips.
//
// For the sparse regime the engine lives in (np small) the draw is
// exact: successes are located by sampling geometric gaps between them,
// costing O(np) time. When the variance np(1-p) is large the skew is
// negligible and a rounded normal approximation is used, keeping the
// call O(1); the crossover matches Poisson's.
func (s *SplitMix64) Binomial(n int, p float64) int {
	switch {
	case n <= 0 || p <= 0:
		return 0
	case p >= 1:
		return n
	case p > 0.5:
		return n - s.Binomial(n, 1-p)
	}
	if npq := float64(n) * p * (1 - p); npq > 64 {
		k := int(float64(n)*p + s.normFloat()*math.Sqrt(npq) + 0.5)
		if k < 0 {
			k = 0
		}
		if k > n {
			k = n
		}
		return k
	}
	// Geometric-gap method: the gap to the next success is geometric
	// with parameter p, so successes are found in O(np) expected steps.
	lnq := math.Log1p(-p)
	k, i := 0, 0
	for {
		u := s.Float64() // [0,1); 1-u in (0,1] keeps the log finite
		i += int(math.Log(1-u)/lnq) + 1
		if i > n {
			return k
		}
		k++
	}
}

// Bits fills a BitArray of n random bits.
func (s *SplitMix64) Bits(n int) *bitarray.BitArray {
	a := bitarray.New(n)
	words := a.Words()
	for i := range words {
		words[i] = s.Uint64()
	}
	// Re-trim by reconstructing through FromWords semantics.
	b := bitarray.FromWords(words, n)
	return b
}

// Bytes fills p with random bytes.
func (s *SplitMix64) Bytes(p []byte) {
	for i := 0; i+8 <= len(p); i += 8 {
		v := s.Uint64()
		for j := 0; j < 8; j++ {
			p[i+j] = byte(v >> (8 * j))
		}
	}
	if r := len(p) % 8; r != 0 {
		v := s.Uint64()
		for j := 0; j < r; j++ {
			p[len(p)-r+j] = byte(v >> (8 * j))
		}
	}
}

// Shuffle permutes idx uniformly (Fisher-Yates). Classic Cascade
// shuffles the sifted bits between passes.
func (s *SplitMix64) Shuffle(idx []int) {
	for i := len(idx) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		idx[i], idx[j] = idx[j], idx[i]
	}
}

// normFloat returns an approximately standard-normal variate by
// summing 12 uniforms (Irwin-Hall); adequate for the normal
// approximation fallback in Poisson.
func (s *SplitMix64) normFloat() float64 {
	sum := 0.0
	for i := 0; i < 12; i++ {
		sum += s.Float64()
	}
	return sum - 6
}
