package rng

import (
	"math"
	"testing"
	"testing/quick"

	"qkd/internal/bitarray"
)

func TestLFSRNonDegenerate(t *testing.T) {
	l := NewLFSR32(0xDEADBEEF)
	ones := 0
	for i := 0; i < 10000; i++ {
		ones += l.Next()
	}
	// A maximal LFSR is balanced: expect ~5000 ones.
	if ones < 4500 || ones > 5500 {
		t.Errorf("LFSR badly biased: %d ones in 10000", ones)
	}
}

func TestLFSRZeroSeedMapped(t *testing.T) {
	l := NewLFSR32(0)
	if l.State() == 0 {
		t.Fatal("zero seed locked the register")
	}
	seen := false
	for i := 0; i < 100; i++ {
		if l.Next() == 1 {
			seen = true
		}
	}
	if !seen {
		t.Error("LFSR from mapped seed produced all zeros")
	}
}

func TestLFSRDeterministic(t *testing.T) {
	a := NewLFSR32(42)
	b := NewLFSR32(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("LFSR diverged at step %d", i)
		}
	}
}

func TestLFSRLongPeriod(t *testing.T) {
	// State must not return to the seed within a modest horizon
	// (period is 2^32-1 for maximal taps).
	l := NewLFSR32(1)
	for i := 0; i < 1<<16; i++ {
		l.Next()
		if l.State() == 1 {
			t.Fatalf("LFSR period only %d", i+1)
		}
	}
}

func TestMaskAgreement(t *testing.T) {
	m1 := Mask(12345, 777)
	m2 := Mask(12345, 777)
	if !m1.Equal(m2) {
		t.Fatal("same seed produced different masks")
	}
	m3 := Mask(12346, 777)
	if m1.Equal(m3) {
		t.Fatal("different seeds produced identical masks")
	}
	if m1.Len() != 777 {
		t.Fatalf("mask length %d", m1.Len())
	}
}

func TestMaskRoughlyHalf(t *testing.T) {
	m := Mask(999, 10000)
	ones := m.OnesCount()
	if ones < 4500 || ones > 5500 {
		t.Errorf("mask density off: %d/10000", ones)
	}
}

func TestSplitMixDeterministic(t *testing.T) {
	a := NewSplitMix64(7)
	b := NewSplitMix64(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("SplitMix64 nondeterministic")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewSplitMix64(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := NewSplitMix64(5)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Intn biased: value %d count %d", v, c)
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSplitMix64(1).Intn(0)
}

func TestPoissonMean(t *testing.T) {
	s := NewSplitMix64(11)
	for _, lambda := range []float64{0.1, 0.5, 2, 10} {
		n := 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += s.Poisson(lambda)
		}
		mean := float64(sum) / float64(n)
		if math.Abs(mean-lambda) > 0.15*lambda+0.02 {
			t.Errorf("Poisson(%v) mean = %v", lambda, mean)
		}
	}
}

func TestPoissonZeroLambda(t *testing.T) {
	s := NewSplitMix64(1)
	for i := 0; i < 100; i++ {
		if s.Poisson(0) != 0 {
			t.Fatal("Poisson(0) != 0")
		}
	}
}

func TestPoissonLargeLambdaApprox(t *testing.T) {
	s := NewSplitMix64(2)
	n := 5000
	sum := 0
	for i := 0; i < n; i++ {
		k := s.Poisson(100)
		if k < 0 {
			t.Fatal("negative Poisson draw")
		}
		sum += k
	}
	mean := float64(sum) / float64(n)
	if mean < 95 || mean > 105 {
		t.Errorf("Poisson(100) mean = %v", mean)
	}
}

func TestBitsLengthAndBalance(t *testing.T) {
	s := NewSplitMix64(9)
	a := s.Bits(10001)
	if a.Len() != 10001 {
		t.Fatalf("Bits length %d", a.Len())
	}
	ones := a.OnesCount()
	if ones < 4600 || ones > 5400 {
		t.Errorf("Bits biased: %d/10001", ones)
	}
}

func TestBytesFill(t *testing.T) {
	s := NewSplitMix64(13)
	for _, n := range []int{0, 1, 7, 8, 9, 100} {
		p := make([]byte, n)
		s.Bytes(p)
		if n >= 16 {
			allZero := true
			for _, b := range p {
				if b != 0 {
					allZero = false
				}
			}
			if allZero {
				t.Errorf("Bytes(%d) all zero", n)
			}
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	s := NewSplitMix64(17)
	idx := make([]int, 100)
	for i := range idx {
		idx[i] = i
	}
	s.Shuffle(idx)
	seen := make(map[int]bool)
	for _, v := range idx {
		if seen[v] {
			t.Fatalf("duplicate %d after shuffle", v)
		}
		seen[v] = true
	}
	if len(seen) != 100 {
		t.Fatal("shuffle lost elements")
	}
}

// Property: Mask is a pure function of (seed, n).
func TestPropertyMaskPure(t *testing.T) {
	f := func(seed uint32, nRaw uint16) bool {
		n := int(nRaw)%512 + 1
		return Mask(seed, n).Equal(Mask(seed, n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkMask4096(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Mask(uint32(i), 4096)
	}
}

func BenchmarkPoissonMu01(b *testing.B) {
	s := NewSplitMix64(1)
	for i := 0; i < b.N; i++ {
		s.Poisson(0.1)
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	s := NewSplitMix64(1)
	if got := s.Binomial(0, 0.5); got != 0 {
		t.Errorf("Binomial(0, .5) = %d", got)
	}
	if got := s.Binomial(100, 0); got != 0 {
		t.Errorf("Binomial(100, 0) = %d", got)
	}
	if got := s.Binomial(100, 1); got != 100 {
		t.Errorf("Binomial(100, 1) = %d", got)
	}
	for i := 0; i < 100; i++ {
		if got := s.Binomial(10, 0.3); got < 0 || got > 10 {
			t.Fatalf("Binomial(10, .3) = %d out of range", got)
		}
	}
}

func TestBinomialMoments(t *testing.T) {
	// Both regimes (geometric-gap and normal approximation) must
	// reproduce the binomial mean and variance within 5 sigma.
	s := NewSplitMix64(42)
	cases := []struct {
		n int
		p float64
	}{
		{10000, 0.001}, // sparse: geometric-gap path
		{10000, 0.07},  // sparse-ish, still exact
		{10000, 0.5},   // dense: normal approximation
		{200, 0.4},     // small n, exact via complement
	}
	for _, c := range cases {
		const draws = 20000
		sum, sum2 := 0.0, 0.0
		for i := 0; i < draws; i++ {
			k := float64(s.Binomial(c.n, c.p))
			sum += k
			sum2 += k * k
		}
		mean := sum / draws
		wantMean := float64(c.n) * c.p
		variance := sum2/draws - mean*mean
		wantVar := float64(c.n) * c.p * (1 - c.p)
		// 5-sigma tolerance on the sample mean.
		tol := 5 * math.Sqrt(wantVar/draws)
		if math.Abs(mean-wantMean) > tol {
			t.Errorf("Binomial(%d, %g): mean %.2f, want %.2f +/- %.2f", c.n, c.p, mean, wantMean, tol)
		}
		if variance < 0.8*wantVar || variance > 1.2*wantVar {
			t.Errorf("Binomial(%d, %g): variance %.2f, want ~%.2f", c.n, c.p, variance, wantVar)
		}
	}
}

// TestNextWordMatchesScalar pins the word-batched LFSR to the scalar
// register: 64 bits per step, identical stream and identical state.
func TestNextWordMatchesScalar(t *testing.T) {
	for _, seed := range []uint32{1, 2, 0xDEADBEEF, 0x80000000, 12345} {
		a := NewLFSR32(seed)
		b := NewLFSR32(seed)
		for step := 0; step < 16; step++ {
			var want uint64
			for i := 0; i < 64; i++ {
				want |= uint64(a.Next()) << i
			}
			got := b.NextWord()
			if got != want {
				t.Fatalf("seed %#x step %d: NextWord %#x, scalar %#x", seed, step, got, want)
			}
			if a.State() != b.State() {
				t.Fatalf("seed %#x step %d: state diverged %#x vs %#x", seed, step, a.State(), b.State())
			}
		}
	}
}

// TestMaskWordsMatchesScalarMask pins MaskWords (and therefore Mask)
// against a per-bit scalar construction at awkward lengths.
func TestMaskWordsMatchesScalarMask(t *testing.T) {
	for _, n := range []int{0, 1, 7, 63, 64, 65, 127, 128, 1000, 4096} {
		for _, seed := range []uint32{1, 99, 0xCAFEBABE} {
			l := NewLFSR32(seed)
			want := bitarray.New(n)
			for i := 0; i < n; i++ {
				if l.Next() == 1 {
					want.Set(i, 1)
				}
			}
			got := Mask(seed, n)
			if !got.Equal(want) {
				t.Fatalf("seed %#x n=%d: Mask mismatch", seed, n)
			}
			// Buffer-reuse path: dirty destination must not leak.
			dirty := make([]uint64, (n+63)/64)
			for i := range dirty {
				dirty[i] = ^uint64(0)
			}
			w := MaskWords(seed, n, dirty)
			if !bitarray.FromWords(w, n).Equal(want) {
				t.Fatalf("seed %#x n=%d: MaskWords(dst) mismatch", seed, n)
			}
		}
	}
}

// TestMaskWordsTailZero confirms bits past n are cleared so word-level
// consumers (ParityMasked, popcounts) never see stale garbage.
func TestMaskWordsTailZero(t *testing.T) {
	w := MaskWords(77, 70, []uint64{^uint64(0), ^uint64(0)})
	if top := w[1] >> 6; top != 0 {
		t.Errorf("bits past n survive: %#x", top)
	}
}

func BenchmarkMaskWords4096(b *testing.B) {
	buf := make([]uint64, 64)
	for i := 0; i < b.N; i++ {
		MaskWords(uint32(i)+1, 4096, buf)
	}
}
