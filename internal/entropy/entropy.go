// Package entropy implements the eavesdropping-free entropy estimation
// of Section 6 and the paper's appendix: before privacy amplification,
// Alice and Bob must bound how much Eve could know about their
// error-corrected bits, combining
//
//   - a defense function bounding the information leaked through
//     error-inducing (non-transparent) attacks, given the observed
//     error count — Bennett et al.'s and Slutsky et al.'s estimates are
//     both provided, selectable exactly as in the BBN engine;
//   - the information leaked transparently through multi-photon pulses
//     (beamsplitting / PNS): proportional to the number of bits
//     *transmitted* for weak-coherent sources but only to the number
//     *received* for entangled sources (Brassard-Mor-Sanders);
//   - the parity bits disclosed during error correction (exact); and
//   - a non-randomness measure, a placeholder in the paper and here.
//
// Stochastic terms carry standard deviations which are combined at the
// end and scaled by a confidence parameter c ("a parameter c = 5 means
// 5 standard deviations, or about 10^-6 chance of successful
// eavesdropping").
//
// The appendix formulas in the source text are OCR-damaged; DESIGN.md
// section 3 records the reconstruction implemented here.
package entropy

import (
	"fmt"
	"math"
)

// Defense selects which published defense function bounds Eve's
// information from error-inducing attacks.
type Defense int

const (
	// Bennett is the estimate from Bennett et al. 1992: Eve's expected
	// information is at most (4/sqrt 2)*e bits with standard deviation
	// sqrt((4+2*sqrt 2)*e) for e observed errors.
	Bennett Defense = iota
	// Slutsky is the defense-frontier estimate of Slutsky et al. 1998,
	// asymptotically tight but conservative at finite block sizes.
	Slutsky
)

func (d Defense) String() string {
	switch d {
	case Bennett:
		return "bennett"
	case Slutsky:
		return "slutsky"
	}
	return fmt.Sprintf("Defense(%d)", int(d))
}

// PNSAccounting selects how transparent (multi-photon) eavesdropping
// is charged for weak-coherent sources. Section 6: "Information from
// transparent eavesdropping is not uniformly treated in the QKD
// community."
type PNSAccounting int

const (
	// PNSReceived is the traditional beamsplitting account: Eve holds a
	// photon for the multi-photon fraction of the bits Bob actually
	// received. The charge is b * P[multi | non-vacuum].
	PNSReceived PNSAccounting = iota
	// PNSTransmitted is the conservative POVM view of Brassard, Mor and
	// Sanders: leakage "can be proportional to the number of
	// transmitted bits times the multi-photon probability". The charge
	// is n * P[multi]; on lossy links this can exceed the batch and
	// zero the yield.
	PNSTransmitted
)

// Inputs gathers the quantities entropy estimation consumes, named as
// in Section 6 of the paper.
type Inputs struct {
	SiftedBits      int           // b: number of received (sifted) bits
	Errors          int           // e: errors found in the sifted bits
	Transmitted     int           // n: total pulses transmitted for this batch
	Disclosed       int           // d: parity bits disclosed during error correction
	NonRandomness   int           // r: non-randomness measure (placeholder, usually 0)
	MultiPhotonProb float64       // source's P[photons >= 2] per pulse
	NonVacuumProb   float64       // source's P[photons >= 1] per pulse (received-based conditioning)
	PNS             PNSAccounting // weak-coherent transparent-leak policy
	Entangled       bool          // entangled source: leak is b * MultiPhotonProb (Section 6)
	Confidence      float64       // c: standard deviations of margin (paper uses 5)
}

// Validate reports obviously inconsistent inputs.
func (in Inputs) Validate() error {
	switch {
	case in.SiftedBits < 0 || in.Errors < 0 || in.Transmitted < 0 ||
		in.Disclosed < 0 || in.NonRandomness < 0:
		return fmt.Errorf("entropy: negative input")
	case in.Errors > in.SiftedBits:
		return fmt.Errorf("entropy: %d errors exceed %d sifted bits", in.Errors, in.SiftedBits)
	case in.MultiPhotonProb < 0 || in.MultiPhotonProb > 1:
		return fmt.Errorf("entropy: multi-photon probability %v out of [0,1]", in.MultiPhotonProb)
	case in.Confidence < 0:
		return fmt.Errorf("entropy: negative confidence %v", in.Confidence)
	}
	return nil
}

// Components breaks the estimate down for experiment reporting.
type Components struct {
	Defense       float64 // t: defense-function point estimate
	DefenseSigma  float64 // standard deviation of t
	MultiPhoton   float64 // m: transparent-eavesdropping point estimate
	MultiSigma    float64 // standard deviation of m
	Disclosed     int     // d, copied from inputs
	NonRandomness int     // r, copied from inputs
	Margin        float64 // c * combined sigma
}

// Result is the outcome of an estimate.
type Result struct {
	// Bits is the eavesdropping-free entropy: the number of bits privacy
	// amplification may safely retain. Never negative.
	Bits int
	// Raw is the un-clamped floating point value (may be negative when
	// the channel is hopeless, e.g. under full intercept-resend).
	Raw        float64
	Components Components
}

// BennettEstimate returns the point estimate and standard deviation of
// Eve's information for e observed errors under the Bennett et al.
// bound.
func BennettEstimate(e int) (t, sigma float64) {
	fe := float64(e)
	return 4 * fe / math.Sqrt2, math.Sqrt((4 + 2*math.Sqrt2) * fe)
}

// SlutskyFraction is the defense frontier t'(e'): the fraction of bits
// that must be sacrificed at inflated error rate e'. It is 0 at e'=0
// and saturates at 1 for e' >= 1/3 (at a third errors, intercept-resend
// in the breakdown regime gives Eve everything).
func SlutskyFraction(ePrime float64) float64 {
	if ePrime >= 1.0/3 {
		return 1
	}
	if ePrime < 0 {
		ePrime = 0
	}
	u := (1 - 3*ePrime) / (1 - ePrime)
	v := 1 - 0.5*u*u
	if v <= 0 {
		return 1
	}
	t := 1 + math.Log2(v)
	if t < 0 {
		return 0
	}
	if t > 1 {
		return 1
	}
	return t
}

// SlutskyEstimate returns the point estimate and a one-standard-
// deviation sensitivity for e errors in b bits.
func SlutskyEstimate(b, e int) (t, sigma float64) {
	if b == 0 {
		return 0, 0
	}
	fb := float64(b)
	e0 := float64(e) / fb
	t = fb * SlutskyFraction(e0)
	// Sensitivity: shift e by one standard deviation (sqrt e) and take
	// the difference, per the paper's "separate out the standard
	// deviation of each term" treatment.
	e1 := (float64(e) + math.Sqrt(float64(e))) / fb
	sigma = fb*SlutskyFraction(e1) - t
	if sigma < 0 {
		sigma = 0
	}
	return t, sigma
}

// Estimate computes the resultant entropy
//
//	H = b - r - d - t - m - c*sqrt(sigma_t^2 + sigma_m^2)
//
// where t is the chosen defense function and m the transparent
// (multi-photon) leakage.
func Estimate(in Inputs, d Defense) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	var t, sigmaT float64
	switch d {
	case Bennett:
		t, sigmaT = BennettEstimate(in.Errors)
	case Slutsky:
		t, sigmaT = SlutskyEstimate(in.SiftedBits, in.Errors)
	default:
		return Result{}, fmt.Errorf("entropy: unknown defense function %d", d)
	}

	var base, p float64
	switch {
	case in.Entangled:
		// Entangled pairs: "the amount of information Eve may obtain is
		// only proportional to the number of received bits times the
		// multi-photon probability."
		base, p = float64(in.SiftedBits), in.MultiPhotonProb
	case in.PNS == PNSTransmitted:
		base, p = float64(in.Transmitted), in.MultiPhotonProb
	default: // PNSReceived
		base = float64(in.SiftedBits)
		if in.NonVacuumProb > 0 {
			p = in.MultiPhotonProb / in.NonVacuumProb
		} else {
			p = in.MultiPhotonProb
		}
	}
	if p > 1 {
		p = 1
	}
	m := base * p
	sigmaM := math.Sqrt(base * p * (1 - p))

	margin := in.Confidence * math.Sqrt(sigmaT*sigmaT+sigmaM*sigmaM)
	raw := float64(in.SiftedBits) - float64(in.NonRandomness) - float64(in.Disclosed) -
		t - m - margin

	res := Result{
		Raw: raw,
		Components: Components{
			Defense:       t,
			DefenseSigma:  sigmaT,
			MultiPhoton:   m,
			MultiSigma:    sigmaM,
			Disclosed:     in.Disclosed,
			NonRandomness: in.NonRandomness,
			Margin:        margin,
		},
	}
	if raw > 0 {
		res.Bits = int(raw)
	}
	if res.Bits > in.SiftedBits {
		res.Bits = in.SiftedBits
	}
	return res, nil
}
