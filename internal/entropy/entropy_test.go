package entropy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSlutskyFractionEndpoints(t *testing.T) {
	if f := SlutskyFraction(0); f != 0 {
		t.Errorf("t'(0) = %v, want 0", f)
	}
	if f := SlutskyFraction(1.0 / 3); f != 1 {
		t.Errorf("t'(1/3) = %v, want 1", f)
	}
	if f := SlutskyFraction(0.5); f != 1 {
		t.Errorf("t'(0.5) = %v, want 1", f)
	}
	if f := SlutskyFraction(-0.1); f != 0 {
		t.Errorf("t'(-0.1) = %v, want 0 (clamped)", f)
	}
}

func TestSlutskyFractionMonotone(t *testing.T) {
	prev := -1.0
	for e := 0.0; e <= 0.34; e += 0.005 {
		f := SlutskyFraction(e)
		if f < prev-1e-12 {
			t.Fatalf("t' not monotone at e'=%v: %v < %v", e, f, prev)
		}
		if f < 0 || f > 1 {
			t.Fatalf("t'(%v) = %v out of [0,1]", e, f)
		}
		prev = f
	}
}

func TestBennettEstimateShape(t *testing.T) {
	t0, s0 := BennettEstimate(0)
	if t0 != 0 || s0 != 0 {
		t.Errorf("Bennett(0) = %v, %v", t0, s0)
	}
	t100, s100 := BennettEstimate(100)
	want := 4 * 100 / math.Sqrt2
	if math.Abs(t100-want) > 1e-9 {
		t.Errorf("Bennett(100) = %v, want %v", t100, want)
	}
	if s100 <= 0 {
		t.Error("Bennett sigma must be positive for e>0")
	}
	// Point estimate is linear in e; sigma grows like sqrt(e).
	t200, s200 := BennettEstimate(200)
	if math.Abs(t200-2*t100) > 1e-9 {
		t.Error("Bennett point estimate not linear")
	}
	if math.Abs(s200-math.Sqrt2*s100) > 1e-9 {
		t.Error("Bennett sigma not sqrt-scaling")
	}
}

func TestEstimateNoErrorsNoLoss(t *testing.T) {
	// Perfect channel, no disclosure, no multi-photon: H = b.
	in := Inputs{SiftedBits: 1000, Confidence: 5}
	for _, d := range []Defense{Bennett, Slutsky} {
		res, err := Estimate(in, d)
		if err != nil {
			t.Fatal(err)
		}
		if res.Bits != 1000 {
			t.Errorf("%v: H = %d, want 1000", d, res.Bits)
		}
	}
}

func TestEstimateDisclosureSubtracted(t *testing.T) {
	in := Inputs{SiftedBits: 1000, Disclosed: 137, Confidence: 0}
	res, err := Estimate(in, Bennett)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bits != 1000-137 {
		t.Errorf("H = %d, want %d", res.Bits, 863)
	}
}

func TestEstimateInterceptResendKillsChannel(t *testing.T) {
	// Under full intercept-resend (25 % QBER) Eve knows half the sifted
	// bits; both defenses must sacrifice at least that much. (The paper
	// notes Bennett's estimate is the less conservative of the two; at
	// e=b/4 it still discards ~71 % per bit, Slutsky ~92 %.)
	in := Inputs{SiftedBits: 4096, Errors: 1024, Confidence: 5}
	for _, d := range []Defense{Bennett, Slutsky} {
		res, err := Estimate(in, d)
		if err != nil {
			t.Fatal(err)
		}
		if float64(res.Bits) > 0.5*4096 {
			t.Errorf("%v: %d bits survive 25%% QBER — does not cover Eve's actual haul", d, res.Bits)
		}
	}
	// And at one-third QBER Slutsky must zero the channel entirely.
	in.Errors = 4096 / 3
	res, err := Estimate(in, Slutsky)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bits != 0 {
		t.Errorf("slutsky: %d bits survive 33%% QBER, want 0", res.Bits)
	}
}

func TestSlutskyMoreConservativeAtModerateQBER(t *testing.T) {
	// The paper: Slutsky's estimate "is overly conservative for
	// finite-length blocks" — at the same observed error rate it should
	// allow fewer bits than Bennett in the operating regime.
	in := Inputs{SiftedBits: 4096, Errors: 4096 * 7 / 100, Confidence: 5}
	bres, err := Estimate(in, Bennett)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := Estimate(in, Slutsky)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Bits >= bres.Bits {
		t.Errorf("Slutsky (%d) not more conservative than Bennett (%d) at 7%% QBER",
			sres.Bits, bres.Bits)
	}
}

func TestMultiPhotonChargesTransmittedForWeakCoherent(t *testing.T) {
	// Weak-coherent: leak proportional to transmitted pulses n.
	// Entangled: proportional to sifted bits b. With n >> b the
	// weak-coherent charge must be much larger (Section 6).
	base := Inputs{
		SiftedBits:      4096,
		Errors:          100,
		Transmitted:     1000000,
		MultiPhotonProb: 0.0047,
		NonVacuumProb:   0.0952,
		Confidence:      5,
	}
	wc := base
	wc.PNS = PNSTransmitted
	ent := base
	ent.Entangled = true
	wres, err := Estimate(wc, Bennett)
	if err != nil {
		t.Fatal(err)
	}
	eres, err := Estimate(ent, Bennett)
	if err != nil {
		t.Fatal(err)
	}
	if wres.Components.MultiPhoton <= eres.Components.MultiPhoton {
		t.Errorf("weak-coherent multi-photon charge %v not above entangled %v",
			wres.Components.MultiPhoton, eres.Components.MultiPhoton)
	}
	if wres.Bits >= eres.Bits {
		t.Errorf("weak-coherent H (%d) not below entangled H (%d)", wres.Bits, eres.Bits)
	}
	// At mu=0.1 over 1e6 pulses the weak-coherent charge (~4700) wipes
	// out a 4096-bit batch entirely.
	if wres.Bits != 0 {
		t.Errorf("weak-coherent H = %d, want 0 (PNS charge exceeds batch)", wres.Bits)
	}
}

func TestConfidenceMarginReducesYield(t *testing.T) {
	in := Inputs{SiftedBits: 4096, Errors: 200, Confidence: 0}
	relaxed, err := Estimate(in, Bennett)
	if err != nil {
		t.Fatal(err)
	}
	in.Confidence = 5
	strict, err := Estimate(in, Bennett)
	if err != nil {
		t.Fatal(err)
	}
	if strict.Bits >= relaxed.Bits {
		t.Errorf("c=5 (%d bits) not below c=0 (%d bits)", strict.Bits, relaxed.Bits)
	}
	if strict.Components.Margin <= 0 {
		t.Error("margin not reported")
	}
}

func TestEstimateValidation(t *testing.T) {
	bad := []Inputs{
		{SiftedBits: -1},
		{SiftedBits: 10, Errors: 11},
		{SiftedBits: 10, MultiPhotonProb: 1.5},
		{SiftedBits: 10, Confidence: -1},
	}
	for i, in := range bad {
		if _, err := Estimate(in, Bennett); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := Estimate(Inputs{SiftedBits: 10}, Defense(99)); err == nil {
		t.Error("unknown defense accepted")
	}
}

func TestNonRandomnessSubtracted(t *testing.T) {
	in := Inputs{SiftedBits: 1000, NonRandomness: 50, Confidence: 0}
	res, err := Estimate(in, Bennett)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bits != 950 {
		t.Errorf("H = %d, want 950", res.Bits)
	}
}

// Property: the estimate never exceeds the sifted bit count and never
// goes negative, for any consistent inputs.
func TestPropertyEstimateBounded(t *testing.T) {
	f := func(b uint16, eFrac, dFrac uint8, conf uint8, defense bool) bool {
		in := Inputs{
			SiftedBits: int(b),
			Errors:     int(b) * int(eFrac) / 255,
			Disclosed:  int(b) * int(dFrac) / 255,
			Confidence: float64(conf % 10),
		}
		d := Bennett
		if defense {
			d = Slutsky
		}
		res, err := Estimate(in, d)
		if err != nil {
			return false
		}
		return res.Bits >= 0 && res.Bits <= in.SiftedBits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: more errors never increase the Slutsky yield.
func TestPropertySlutskyMonotoneInErrors(t *testing.T) {
	f := func(e1, e2 uint8) bool {
		lo, hi := int(e1), int(e2)
		if lo > hi {
			lo, hi = hi, lo
		}
		b := 1024
		r1, err1 := Estimate(Inputs{SiftedBits: b, Errors: lo, Confidence: 0}, Slutsky)
		r2, err2 := Estimate(Inputs{SiftedBits: b, Errors: hi, Confidence: 0}, Slutsky)
		if err1 != nil || err2 != nil {
			return false
		}
		return r2.Bits <= r1.Bits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEstimate(b *testing.B) {
	in := Inputs{SiftedBits: 4096, Errors: 280, Transmitted: 800000,
		Disclosed: 900, MultiPhotonProb: 0.0047, Confidence: 5}
	for i := 0; i < b.N; i++ {
		if _, err := Estimate(in, Slutsky); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPNSReceivedConditionsOnNonVacuum(t *testing.T) {
	// Received-based accounting charges b * P[multi | non-vacuum]:
	// at mu=0.1 that is ~4.9 % of the sifted bits.
	in := Inputs{
		SiftedBits:      4096,
		MultiPhotonProb: 0.00467,
		NonVacuumProb:   0.0952,
		Confidence:      0,
	}
	res, err := Estimate(in, Bennett)
	if err != nil {
		t.Fatal(err)
	}
	want := 4096 * 0.00467 / 0.0952
	if math.Abs(res.Components.MultiPhoton-want) > 1 {
		t.Errorf("received-based charge %v, want ~%v", res.Components.MultiPhoton, want)
	}
}

func TestPNSTransmittedCanZeroLossyLink(t *testing.T) {
	// The conservative POVM accounting wipes out a high-loss link: the
	// phenomenon Brassard et al. warned about and the reason entangled
	// sources matter (Section 6).
	in := Inputs{
		SiftedBits:      4096,
		Transmitted:     3700000, // ~10 km operating point for a 4096-bit batch
		MultiPhotonProb: 0.00467,
		NonVacuumProb:   0.0952,
		PNS:             PNSTransmitted,
		Confidence:      5,
	}
	res, err := Estimate(in, Bennett)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bits != 0 {
		t.Errorf("transmitted-based charge left %d bits on a 900x-loss link", res.Bits)
	}
}
