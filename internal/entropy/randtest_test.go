package entropy

import (
	"testing"

	"qkd/internal/bitarray"
	"qkd/internal/rng"
)

func TestNonRandomnessFairStringChargesNothing(t *testing.T) {
	gen := rng.NewSplitMix64(1)
	for trial := 0; trial < 10; trial++ {
		bits := gen.Bits(4096)
		if r := NonRandomness(bits); r > 40 {
			t.Errorf("trial %d: fair string charged %d bits", trial, r)
		}
	}
}

func TestNonRandomnessConstantStringChargedFully(t *testing.T) {
	zeros := bitarray.New(4096)
	r := NonRandomness(zeros)
	if r < 4000 {
		t.Errorf("all-zeros charged only %d of 4096", r)
	}
	ones := bitarray.New(4096)
	ones.SetRange(0, 4096, 1)
	if r := NonRandomness(ones); r < 4000 {
		t.Errorf("all-ones charged only %d of 4096", r)
	}
}

func TestNonRandomnessDetectsDetectorBias(t *testing.T) {
	// 70/30 bias (a detector-efficiency mismatch): deficit should be
	// roughly n*(1-h2(0.7)) ~ 0.12n.
	gen := rng.NewSplitMix64(2)
	bits := bitarray.New(4096)
	for i := 0; i < 4096; i++ {
		if gen.Float64() < 0.7 {
			bits.Set(i, 1)
		}
	}
	r := NonRandomness(bits)
	if r < 200 || r > 900 {
		t.Errorf("70%% bias charged %d bits, want roughly 0.12*4096 ~ 500", r)
	}
}

func TestNonRandomnessDetectsPeriodicStructure(t *testing.T) {
	// Alternating 0101... is perfectly balanced (monobit blind) but
	// fully predictable; the serial test must charge nearly everything.
	bits := bitarray.New(4096)
	for i := 0; i < 4096; i += 2 {
		bits.Set(i, 1)
	}
	r := NonRandomness(bits)
	if r < 2000 {
		t.Errorf("alternating pattern charged only %d of 4096", r)
	}
}

func TestNonRandomnessShortStringsExempt(t *testing.T) {
	if r := NonRandomness(bitarray.New(32)); r != 0 {
		t.Errorf("short string charged %d", r)
	}
}

func TestNonRandomnessFeedsEstimate(t *testing.T) {
	// The r measure plugs into the estimate as Section 6 specifies.
	bits := bitarray.New(1024) // pathological key
	r := NonRandomness(bits)
	res, err := Estimate(Inputs{SiftedBits: 1024, NonRandomness: r, Confidence: 0}, Bennett)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bits > 50 {
		t.Errorf("pathological key still yields %d bits", res.Bits)
	}
}
