package entropy

import (
	"math"

	"qkd/internal/bitarray"
)

// NonRandomness estimates the paper's "r" input to entropy estimation:
// a number of bits by which to shorten the key to account for
// detectable non-randomness in the raw QKD bits (detector bias, for
// example). Section 6 leaves this "only a placeholder at the moment,
// until randomness testing is put into the system" and assumes "this
// testing will produce a measure in the form of a number of bits by
// which to shorten the string" — this is that test, implemented.
//
// Two deficits are combined:
//
//   - monobit: if ones occur with frequency p, each bit carries only
//     h2(p) bits of entropy; the deficit is n*(1-h2(p)). This catches
//     detector bias (one APD more efficient than the other).
//   - serial: the entropy of overlapping bit pairs, H2/2 per bit,
//     bounds first-order correlation; the deficit beyond the monobit
//     one is n*(h2(p) - H2/2). This catches periodic structure (e.g.
//     gating artifacts) that a balanced stream can still carry.
//
// A sampling allowance of a few standard deviations is subtracted so
// that genuinely random strings measure ~0 rather than accumulating
// noise; the result is clamped to [0, n].
func NonRandomness(bits *bitarray.BitArray) int {
	n := bits.Len()
	if n < 64 {
		// Too short to test meaningfully; charge nothing rather than
		// noise.
		return 0
	}
	ones := bits.OnesCount()
	p1 := float64(ones) / float64(n)
	monobitDeficit := float64(n) * (1 - h2e(p1))

	// Overlapping pair frequencies.
	var counts [4]int
	prev := bits.Get(0)
	for i := 1; i < n; i++ {
		cur := bits.Get(i)
		counts[prev<<1|cur]++
		prev = cur
	}
	total := float64(n - 1)
	var hPair float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / total
		hPair -= p * math.Log2(p)
	}
	serialDeficit := float64(n) * (h2e(p1) - hPair/2)
	if serialDeficit < 0 {
		serialDeficit = 0
	}

	// Sampling allowance: the monobit deficit of a genuinely fair
	// string concentrates around chi2(1)/(2 ln 2) < 1 bit, and the
	// serial deficit similarly; a flat few-bit allowance keeps false
	// charges at zero without masking real bias.
	const allowance = 6
	r := monobitDeficit + serialDeficit - allowance
	if r < 0 {
		return 0
	}
	if r > float64(n) {
		return n
	}
	return int(r + 0.5)
}

// h2e is binary entropy with safe endpoints.
func h2e(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}
