module qkd

go 1.24
