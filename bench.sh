#!/usr/bin/env bash
# bench.sh — run the headline benchmark groups and emit one JSON report
# per group, so the perf trajectory is tracked PR over PR.
#
# Usage:
#   ./bench.sh            # full run (stable numbers, ~a minute)
#   ./bench.sh --smoke    # CI smoke: one short iteration set, asserts
#                         # the benchmarks still run, not their speed
#   ./bench.sh report     # fold existing BENCH_*.json groups into one
#                         # BENCH_report.json trend artifact
#   ./bench.sh gate       # re-run all five groups (distill, kms, qnet,
#                         # ipsec, flow) at GATE_BENCHTIME and fail (exit 1)
#                         # on a >20% throughput drop against
#                         # BENCH_baseline.json (or $BENCH_BASELINE);
#                         # writes a fresh baseline when none exists,
#                         # refreshes it on pass — a rolling regression
#                         # gate for CI
#
# COUNT=n runs each benchmark n times; the per-group JSON then records
# the mean, `spread_pct` run-to-run variance, and `best_throughput`.
# Measured at COUNT=3: single-run spread reaches ~20% on the qnet
# transport and ~50% on the shortest distill multiplies (bimodal
# scheduler noise), so the gate compares best-of-GATE_COUNT (default 3)
# throughput — stable well inside the 20% tolerance — which is what
# lets it cover all five groups instead of just ipsec/kms.
#
# Groups:
#   distill -> BENCH_distill.json   the distillation fast path, one row
#                                   per layer it crosses (DESIGN.md §7)
#     BenchmarkMul4096 / BenchmarkMul1024  GF(2^n) windowed-comb multiply
#     BenchmarkMask4096                    word-batched LFSR subsets
#     BenchmarkBBN4096QBER5                rank-indexed BBN Cascade, 5% QBER
#     BenchmarkApply4096to2048             privacy amplification end to end
#     BenchmarkPipeline_DistillPerFrame    full sift->EC->entropy->PA frame
#   kms     -> BENCH_kms.json       key delivery service concurrent
#                                   withdrawals (throughput + sampled p99
#                                   latency) at 1/64/1024 consumers, plus
#                                   the single-stripe serialization
#                                   baseline (DESIGN.md §8)
#   qnet    -> BENCH_qnet.json      unified QKD network layer: one
#                                   end-to-end striped transport (route,
#                                   reserve, per-hop OTP, reconstruct)
#                                   at k = 1/2/3 disjoint paths
#                                   (DESIGN.md §9)
#   ipsec   -> BENCH_ipsec.json     gateway dataplane: outbound seal /
#                                   inbound open through SPD+SAD on the
#                                   cached key schedules (AES + OTP),
#                                   single-packet and 64-packet batched
#                                   paths, plus 8 tunnels in parallel
#                                   (DESIGN.md §10-11)
#   flow    -> BENCH_flow.json      closed-loop replenishment control:
#                                   foreground credit-controller and
#                                   LEDBAT-style background ticks on the
#                                   KDS pressure signal, plus sampled
#                                   overload-to-mark latency (DESIGN.md
#                                   §13)
set -euo pipefail
cd "$(dirname "$0")"

BENCHTIME="${BENCHTIME:-1s}"
COUNT="${COUNT:-1}"
mode="${1:-run}"
if [[ "$mode" == "--smoke" ]]; then
    BENCHTIME=10x
fi

out="$(mktemp)"
trap 'rm -f "$out"' EXIT

run() { # pkg, regex
    go test -run '^$' -bench "$2" -benchtime "$BENCHTIME" -count "$COUNT" -benchmem "$1" | tee -a "$out"
}

# Fold the accumulated benchmark lines into a JSON report. Keys are
# benchmark names; values ns/op plus allocation counters and custom
# metrics (MB/s throughput, sampled p99-ns latency) when present.
# With COUNT > 1 each benchmark contributes several samples; the report
# records their mean plus `spread_pct` — (max-min)/mean of per-sample
# throughput — so run-to-run variance is tracked next to the number
# itself and the regression-gate tolerance can be audited against it.
emit() { # json_path
    python3 - "$out" "$1" <<'EOF'
import json, re, sys
from collections import defaultdict

samples = defaultdict(list)
pat = re.compile(r'^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$')
for line in open(sys.argv[1]):
    m = pat.match(line.strip())
    if not m:
        continue
    name, iters, ns, rest = m.groups()
    row = {"iterations": int(iters), "ns_per_op": float(ns)}
    if (t := re.search(r'([\d.]+) MB/s', rest)):
        row["mb_per_s"] = float(t.group(1))
    if (t := re.search(r'([\d.]+) p99-ns', rest)):
        row["p99_ns"] = float(t.group(1))
    if (t := re.search(r'([\d.]+) B/op\s+([\d.]+) allocs/op', rest)):
        row["bytes_per_op"] = float(t.group(1))
        row["allocs_per_op"] = float(t.group(2))
    samples[name].append(row)

def throughput(row):
    return row.get("mb_per_s", 1e9 / row["ns_per_op"])

rows = {}
for name, runs in samples.items():
    row = dict(runs[0])
    for key in ("ns_per_op", "mb_per_s", "p99_ns"):
        vals = [r[key] for r in runs if key in r]
        if vals:
            row[key] = sum(vals) / len(vals)
    if len(runs) > 1:
        tps = [throughput(r) for r in runs]
        mean = sum(tps) / len(tps)
        row["samples"] = len(runs)
        row["spread_pct"] = round(100 * (max(tps) - min(tps)) / mean, 1) if mean > 0 else 0.0
        # Best-of-N throughput: what the gate compares. The mean of a
        # bimodal sample moves with scheduler luck; the best run tracks
        # the code's actual capability.
        row["best_throughput"] = max(tps)
    rows[name] = row

with open(sys.argv[2], "w") as f:
    json.dump(rows, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {sys.argv[2]} ({len(rows)} benchmarks)")
if not rows:
    sys.exit("no benchmark output parsed")
EOF
    : > "$out"
}

run_distill_group() {
    run ./internal/gf2/     'BenchmarkMul4096$|BenchmarkMul1024$'
    run ./internal/rng/     'BenchmarkMask4096$'
    run ./internal/cascade/ 'BenchmarkBBN4096QBER5$'
    run ./internal/privacy/ 'BenchmarkApply4096to2048$'
    run .                   'BenchmarkPipeline_DistillPerFrame$'
    emit BENCH_distill.json
}

run_kms_group() {
    run . 'BenchmarkKMS_Withdraw(1|64|1024|1024Serial)$'
    emit BENCH_kms.json
}

run_qnet_group() {
    run ./internal/qnet/ 'BenchmarkQnet_Stripe(1|2|3)Path$'
    emit BENCH_qnet.json
}

run_ipsec_group() {
    run ./internal/ipsec/ 'BenchmarkGateway_(SealAES|OpenAES|SealOTP|Parallel|SealAESBatch|OpenAESBatch|SealOTPBatch|ParallelBatch)$'
    emit BENCH_ipsec.json
}

run_flow_group() {
    run ./internal/flow/ 'BenchmarkFlow_(ControllerTick|BackgroundTick|MarkLatency)$'
    emit BENCH_flow.json
}

# report: merge whatever per-group reports exist into one trend
# artifact, keyed by group.
if [[ "$mode" == "report" ]]; then
    python3 - <<'EOF'
import json, os, sys

groups = {}
for g in ("distill", "kms", "qnet", "ipsec", "flow"):
    path = f"BENCH_{g}.json"
    if os.path.exists(path):
        with open(path) as f:
            groups[g] = json.load(f)
if not groups:
    sys.exit("no BENCH_*.json group reports found (run ./bench.sh first)")
with open("BENCH_report.json", "w") as f:
    json.dump({"groups": groups}, f, indent=2, sort_keys=True)
    f.write("\n")
n = sum(len(v) for v in groups.values())
print(f"wrote BENCH_report.json ({len(groups)} groups, {n} benchmarks)")
EOF
    exit 0
fi

# gate: benchstat-style regression check on the perf-critical groups.
# Throughput (MB/s when reported, 1/ns_per_op otherwise) must stay
# within GATE_TOLERANCE of the rolling baseline.
if [[ "$mode" == "gate" ]]; then
    BENCHTIME="${GATE_BENCHTIME:-0.3s}"
    COUNT="${GATE_COUNT:-3}"
    baseline="${BENCH_BASELINE:-BENCH_baseline.json}"
    run_distill_group
    run_kms_group
    run_qnet_group
    run_ipsec_group
    run_flow_group
    python3 - "$baseline" "${GATE_TOLERANCE:-0.20}" <<'EOF'
import json, os, sys

baseline_path, tol = sys.argv[1], float(sys.argv[2])
cur = {}
for g in ("distill", "kms", "qnet", "ipsec", "flow"):
    with open(f"BENCH_{g}.json") as f:
        cur.update(json.load(f))

def throughput(row):
    # best_throughput (best of GATE_COUNT runs) when recorded: robust
    # against the bimodal run-to-run noise the spread_pct rows measure.
    if "best_throughput" in row:
        return row["best_throughput"]
    if "mb_per_s" in row:
        return row["mb_per_s"]
    return 1e9 / row["ns_per_op"]

if not os.path.exists(baseline_path):
    with open(baseline_path, "w") as f:
        json.dump(cur, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"no baseline at {baseline_path}; wrote one ({len(cur)} benchmarks), gate passes vacuously")
    sys.exit(0)

with open(baseline_path) as f:
    base = json.load(f)

failed = []
for name in sorted(set(cur) & set(base)):
    b, c = throughput(base[name]), throughput(cur[name])
    if b <= 0:
        continue
    delta = (c - b) / b
    flag = "FAIL" if delta < -tol else "ok"
    print(f"  {flag:4s} {name}: {b:.1f} -> {c:.1f} ({delta:+.1%})")
    if delta < -tol:
        failed.append(name)
for name in sorted(set(cur) - set(base)):
    print(f"  new  {name}: {throughput(cur[name]):.1f}")

if failed:
    sys.exit(f"bench gate: {len(failed)} benchmark(s) regressed more than {tol:.0%}: {', '.join(failed)}")

# Rolling baseline: a passing run becomes the next comparison point.
with open(baseline_path, "w") as f:
    json.dump(cur, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"bench gate: all {len(set(cur) & set(base))} common benchmarks within {tol:.0%}; baseline refreshed")
EOF
    exit 0
fi

# --- full run: all five groups ---------------------------------------
run_distill_group
run_kms_group
run_qnet_group
run_ipsec_group
run_flow_group
