#!/usr/bin/env bash
# bench.sh — run the headline benchmark groups and emit one JSON report
# per group, so the perf trajectory is tracked PR over PR.
#
# Usage:
#   ./bench.sh            # full run (stable numbers, ~a minute)
#   ./bench.sh --smoke    # CI smoke: one short iteration set, asserts
#                         # the benchmarks still run, not their speed
#
# Groups:
#   distill -> BENCH_distill.json   the distillation fast path, one row
#                                   per layer it crosses (DESIGN.md §7)
#     BenchmarkMul4096 / BenchmarkMul1024  GF(2^n) windowed-comb multiply
#     BenchmarkMask4096                    word-batched LFSR subsets
#     BenchmarkBBN4096QBER5                rank-indexed BBN Cascade, 5% QBER
#     BenchmarkApply4096to2048             privacy amplification end to end
#     BenchmarkPipeline_DistillPerFrame    full sift->EC->entropy->PA frame
#   kms     -> BENCH_kms.json       key delivery service concurrent
#                                   withdrawals (throughput + sampled p99
#                                   latency) at 1/64/1024 consumers, plus
#                                   the single-stripe serialization
#                                   baseline (DESIGN.md §8)
#   qnet    -> BENCH_qnet.json      unified QKD network layer: one
#                                   end-to-end striped transport (route,
#                                   reserve, per-hop OTP, reconstruct)
#                                   at k = 1/2/3 disjoint paths
#                                   (DESIGN.md §9)
#   ipsec   -> BENCH_ipsec.json     gateway dataplane: outbound seal /
#                                   inbound open through SPD+SAD on the
#                                   cached key schedules (AES + OTP),
#                                   plus 8 tunnels driven in parallel
#                                   (DESIGN.md §10)
set -euo pipefail
cd "$(dirname "$0")"

BENCHTIME="${BENCHTIME:-1s}"
COUNT="${COUNT:-1}"
if [[ "${1:-}" == "--smoke" ]]; then
    BENCHTIME=10x
fi

out="$(mktemp)"
trap 'rm -f "$out"' EXIT

run() { # pkg, regex
    go test -run '^$' -bench "$2" -benchtime "$BENCHTIME" -count "$COUNT" -benchmem "$1" | tee -a "$out"
}

# Fold the accumulated benchmark lines into a JSON report. Keys are
# benchmark names; values ns/op plus allocation counters and custom
# metrics (MB/s throughput, sampled p99-ns latency) when present.
emit() { # json_path
    python3 - "$out" "$1" <<'EOF'
import json, re, sys

rows = {}
pat = re.compile(r'^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$')
for line in open(sys.argv[1]):
    m = pat.match(line.strip())
    if not m:
        continue
    name, iters, ns, rest = m.groups()
    row = {"iterations": int(iters), "ns_per_op": float(ns)}
    if (t := re.search(r'([\d.]+) MB/s', rest)):
        row["mb_per_s"] = float(t.group(1))
    if (t := re.search(r'([\d.]+) p99-ns', rest)):
        row["p99_ns"] = float(t.group(1))
    if (t := re.search(r'([\d.]+) B/op\s+([\d.]+) allocs/op', rest)):
        row["bytes_per_op"] = float(t.group(1))
        row["allocs_per_op"] = float(t.group(2))
    rows[name] = row

with open(sys.argv[2], "w") as f:
    json.dump(rows, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {sys.argv[2]} ({len(rows)} benchmarks)")
if not rows:
    sys.exit("no benchmark output parsed")
EOF
    : > "$out"
}

# --- distill group ----------------------------------------------------
run ./internal/gf2/     'BenchmarkMul4096$|BenchmarkMul1024$'
run ./internal/rng/     'BenchmarkMask4096$'
run ./internal/cascade/ 'BenchmarkBBN4096QBER5$'
run ./internal/privacy/ 'BenchmarkApply4096to2048$'
run .                   'BenchmarkPipeline_DistillPerFrame$'
emit BENCH_distill.json

# --- kms group --------------------------------------------------------
run . 'BenchmarkKMS_Withdraw(1|64|1024|1024Serial)$'
emit BENCH_kms.json

# --- qnet group -------------------------------------------------------
run ./internal/qnet/ 'BenchmarkQnet_Stripe(1|2|3)Path$'
emit BENCH_qnet.json

# --- ipsec group ------------------------------------------------------
run ./internal/ipsec/ 'BenchmarkGateway_(SealAES|OpenAES|SealOTP|Parallel)$'
emit BENCH_ipsec.json
