#!/usr/bin/env bash
# bench.sh — run the distillation fast-path headline benchmarks and
# emit BENCH_distill.json, so the perf trajectory is tracked PR over PR.
#
# Usage:
#   ./bench.sh            # full run (stable numbers, ~a minute)
#   ./bench.sh --smoke    # CI smoke: one short iteration set, asserts
#                         # the benchmarks still run, not their speed
#
# The headline set covers each layer the distillation pipeline crosses
# (every row of the DESIGN.md §7 / README perf tables):
#   BenchmarkMul4096 / BenchmarkMul1024  GF(2^n) windowed-comb multiply
#   BenchmarkMask4096                    word-batched LFSR subsets
#   BenchmarkBBN4096QBER5                rank-indexed BBN Cascade, 5% QBER
#   BenchmarkApply4096to2048             privacy amplification end to end
#   BenchmarkPipeline_DistillPerFrame    full sift->EC->entropy->PA frame
set -euo pipefail
cd "$(dirname "$0")"

BENCHTIME="${BENCHTIME:-1s}"
COUNT="${COUNT:-1}"
if [[ "${1:-}" == "--smoke" ]]; then
    BENCHTIME=10x
fi

out="$(mktemp)"
trap 'rm -f "$out"' EXIT

run() { # pkg, regex
    go test -run '^$' -bench "$2" -benchtime "$BENCHTIME" -count "$COUNT" -benchmem "$1" | tee -a "$out"
}

run ./internal/gf2/     'BenchmarkMul4096$|BenchmarkMul1024$'
run ./internal/rng/     'BenchmarkMask4096$'
run ./internal/cascade/ 'BenchmarkBBN4096QBER5$'
run ./internal/privacy/ 'BenchmarkApply4096to2048$'
run .                   'BenchmarkPipeline_DistillPerFrame$'

# Fold the benchmark lines into a JSON report. Keys are benchmark
# names; values ns/op plus allocation counters when present.
python3 - "$out" <<'EOF'
import json, re, sys

rows = {}
pat = re.compile(
    r'^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op'
    r'(?:.*?\s([\d.]+) B/op\s+([\d.]+) allocs/op)?')
for line in open(sys.argv[1]):
    m = pat.match(line.strip())
    if not m:
        continue
    name, iters, ns, bop, allocs = m.groups()
    row = {"iterations": int(iters), "ns_per_op": float(ns)}
    if bop is not None:
        row["bytes_per_op"] = float(bop)
        row["allocs_per_op"] = float(allocs)
    rows[name] = row

with open("BENCH_distill.json", "w") as f:
    json.dump(rows, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote BENCH_distill.json ({len(rows)} benchmarks)")
if not rows:
    sys.exit("no benchmark output parsed")
EOF
