package qkd_test

import (
	"fmt"

	"qkd"
)

// benchLink is a short, lossless link so examples run instantly; use
// qkd.DefaultLinkParams() for the paper's 10 km operating point.
func benchLink() qkd.LinkParams {
	p := qkd.DefaultLinkParams()
	p.FiberKm = 0
	p.SystemLossDB = 0
	p.DetectorEff = 1
	p.DarkCountProb = 1e-5
	p.Visibility = 0.96
	return p
}

// Distill shared secret key over a simulated quantum link: the minimal
// use of the library.
func ExampleNewSession() {
	session := qkd.NewSession(benchLink(), qkd.Config{BatchBits: 2048}, 10000, 42)
	if err := session.RunUntilDistilled(256, 200); err != nil {
		fmt.Println(err)
		return
	}
	alice, _ := session.Alice.Pool().TryConsume(256)
	bob, _ := session.Bob.Pool().TryConsume(256)
	fmt.Println("identical keys:", alice.Equal(bob))
	// Output: identical keys: true
}

// An eavesdropper on the quantum channel is detected through the error
// rate she induces, and no key is released.
func ExampleInterceptResend() {
	session := qkd.NewSession(benchLink(), qkd.Config{BatchBits: 2048}, 10000, 7)
	session.Link.SetTap(qkd.NewInterceptResend(1.0, 99))
	if err := session.RunFrames(10); err != nil {
		fmt.Println(err)
		return
	}
	m := session.Alice.Metrics()
	fmt.Println("attack detected:", m.LastQBER > 0.15)
	fmt.Println("key released:", m.DistilledBits)
	// Output:
	// attack detected: true
	// key released: 0
}

// The full Fig. 2 system: user traffic through an IPsec tunnel whose
// keys come from quantum key distribution.
func ExampleNewVPN() {
	n, err := qkd.NewVPN(qkd.VPNConfig{
		Photonics: benchLink(),
		QKD:       qkd.Config{BatchBits: 2048},
		Suite:     qkd.SuiteAES128CTR,
		Seed:      1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer n.Close()
	if err := n.DistillKeys(2048, 200); err != nil {
		fmt.Println(err)
		return
	}
	if err := n.Establish(); err != nil {
		fmt.Println(err)
		return
	}
	got, err := n.Send(qkd.HostA, qkd.HostB, 1, []byte("hello bob"))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("delivered: %s\n", got)
	// Output: delivered: hello bob
}

// A trusted-relay mesh transports end-to-end keys hop by hop and
// reports which relays were trusted with each key.
func ExampleNewRelayFullMesh() {
	mesh := qkd.NewRelayFullMesh(1, 8192, "bbn", "harvard", "bu")
	mesh.Tick() // each link's QKD process deposits pairwise key
	mesh.Cut("bbn", "bu")
	d, err := mesh.TransportKey("bbn", "bu", 512)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("key bits:", d.Key.Len())
	fmt.Println("relays exposed:", d.Exposed)
	// Output:
	// key bits: 512
	// relays exposed: [harvard]
}
