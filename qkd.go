// Package qkd is a from-scratch reproduction of "Quantum Cryptography
// in Practice" (Elliott, Pearson, Troxel; SIGCOMM 2003): the DARPA
// Quantum Network's weak-coherent BB84 link, its QKD protocol suite
// (sifting, Cascade error correction, entropy estimation, privacy
// amplification over GF(2^n), Wegman-Carter authentication), the
// IKE/IPsec VPN integration with QKD-derived keys, and the trusted-
// relay and untrusted-switch network architectures of its Section 8.
//
// The hardware physical layer is substituted by a faithful Monte Carlo
// photonic simulator (see DESIGN.md for the substitution table); every
// protocol layer above it is implemented in full. The simulator runs
// two sampling engines behind one interface: an exact per-pulse path
// (always used when eavesdropper taps, detector dead time, or fiber
// cuts need to see individual pulses) and a batched fast path that
// draws aggregate per-frame click counts and samples only the clicked
// slots — the same distributions, at detection rate instead of pulse
// rate (DESIGN.md section 2).
//
// # Quick start
//
//	session := qkd.NewSession(qkd.DefaultLinkParams(), qkd.Config{}, 0, 42)
//	if err := session.RunUntilDistilled(1024, 1000); err != nil { ... }
//	key, _ := session.Alice.Pool().TryConsume(1024)
//	// session.Bob.Pool() holds the identical 1024 bits.
//
// Higher layers: NewVPN assembles the full Fig. 2 system (two enclaves,
// IPsec gateways, IKE daemons with Qblock KEYMAT, one quantum link);
// NewRelayNetwork and NewOpticalMesh build the Section 8 architectures.
//
// This facade re-exports the library's stable surface; the
// implementation lives under internal/ (one package per subsystem, per
// DESIGN.md's inventory).
package qkd

import (
	"qkd/internal/cascade"
	"qkd/internal/core"
	"qkd/internal/entropy"
	"qkd/internal/eve"
	"qkd/internal/ike"
	"qkd/internal/ipsec"
	"qkd/internal/keypool"
	"qkd/internal/kms"
	"qkd/internal/optical"
	"qkd/internal/photonics"
	"qkd/internal/relay"
	"qkd/internal/vpn"
)

// ---------------------------------------------------------------------
// Physical layer
// ---------------------------------------------------------------------

// LinkParams configures the simulated weak-coherent link.
type LinkParams = photonics.Params

// Link is a simulated quantum channel.
type Link = photonics.Link

// DefaultLinkParams returns the paper's operating point: 1 MHz pulses,
// mean photon number 0.1, 10 km of fiber, 6-8 % QBER.
func DefaultLinkParams() LinkParams { return photonics.DefaultParams() }

// NewLink builds a simulated link.
func NewLink(p LinkParams, seed uint64) *Link { return photonics.NewLink(p, seed) }

// TransmitEngine is one physical-layer simulation strategy. Links pick
// automatically: the batched fast path on honest, dead-time-free links,
// and the exact per-pulse Monte Carlo whenever individual pulses must
// be observable (taps, dead time, cut fiber). Link.SetEngine pins one.
type TransmitEngine = photonics.TransmitEngine

// ExactEngine returns the per-pulse Monte Carlo engine.
func ExactEngine() TransmitEngine { return photonics.Exact() }

// BatchedEngine returns the aggregate-count fast-path engine.
func BatchedEngine() TransmitEngine { return photonics.Batched() }

// Attacks on the quantum channel (Section 6).
type (
	// InterceptResend measures and regenerates pulses, inducing 25 %
	// QBER on attacked sifted bits — detectable.
	InterceptResend = eve.InterceptResend
	// Beamsplit steals one photon from multi-photon pulses —
	// transparent, charged by the entropy estimate instead.
	Beamsplit = eve.Beamsplit
)

// NewInterceptResend attacks the given fraction of pulses.
func NewInterceptResend(prob float64, seed uint64) *InterceptResend {
	return eve.NewInterceptResend(prob, seed)
}

// NewBeamsplit builds the PNS attack.
func NewBeamsplit() *Beamsplit { return eve.NewBeamsplit() }

// ---------------------------------------------------------------------
// QKD protocol engine
// ---------------------------------------------------------------------

// Config parameterizes the protocol engines (batch size, error
// corrector, defense function, confidence, PNS accounting).
type Config = core.Config

// Session is a complete simulated link plus Alice/Bob protocol engines.
type Session = core.Session

// Engine metrics snapshot.
type Metrics = core.Metrics

// Corrector selection.
const (
	CorrectorBBN         = core.CorrectorBBN
	CorrectorClassic     = core.CorrectorClassic
	CorrectorBlockParity = core.CorrectorBlockParity
)

// Defense function selection.
const (
	DefenseBennett = entropy.Bennett
	DefenseSlutsky = entropy.Slutsky
)

// PNS accounting policies for weak-coherent transparent leakage.
const (
	PNSReceived    = entropy.PNSReceived
	PNSTransmitted = entropy.PNSTransmitted
)

// NewSession wires a simulated link to an engine pair; frameSlots <= 0
// selects the default frame size.
func NewSession(p LinkParams, cfg Config, frameSlots int, seed uint64) *Session {
	return core.NewSession(p, cfg, frameSlots, seed)
}

// NewAuthenticatedSession is NewSession with Wegman-Carter
// authentication on the public channel, bootstrapped from
// prepositionBits of shared secret per direction.
func NewAuthenticatedSession(p LinkParams, cfg Config, frameSlots int, seed uint64, prepositionBits int) (*Session, error) {
	return core.NewAuthenticatedSession(p, cfg, frameSlots, seed, prepositionBits)
}

// KeyReservoir is the distilled-key FIFO shared with consumers.
type KeyReservoir = keypool.Reservoir

// KeySource and KeyPool are the consumer- and two-sided views of a key
// supply: satisfied by *KeyReservoir and by KDS handles alike.
type (
	KeySource = keypool.Source
	KeyPool   = keypool.Pool
)

// ---------------------------------------------------------------------
// Key delivery service (KDS)
// ---------------------------------------------------------------------

// KDS is the sharded, QoS-aware key delivery service that sits between
// distillation and every consumer: named key streams with synchronized
// (stream, sequence) block tickets, class-priority FIFO scheduling with
// adaptive admission control, a sharded bulk store, and DTN-buffered
// multi-source aggregation. See DESIGN.md §8.
type (
	KDS       = kms.Service
	KDSConfig = kms.Config
	KDSClass  = kms.Class
	KeyStream = kms.Stream
	KeyTicket = kms.Ticket
	KeyFeed   = kms.Feed
)

// KDS delivery classes, highest priority first.
const (
	KDSClassOTP   = kms.ClassOTP
	KDSClassRekey = kms.ClassRekey
	KDSClassAuth  = kms.ClassAuth
)

// NewKDS builds a key delivery service endpoint. Mirrored endpoints of
// a link must ingest identical deposits in identical order (the same
// contract raw mirrored reservoirs relied on).
func NewKDS(cfg KDSConfig) *KDS { return kms.New(cfg) }

// ErrorCorrector is one interactive reconciliation protocol.
type ErrorCorrector = cascade.Protocol

// NewBBNCascade returns the paper's 64-subset LFSR Cascade variant.
func NewBBNCascade(seed uint64) ErrorCorrector { return cascade.NewBBN(seed) }

// NewClassicCascade returns Brassard-Salvail Cascade.
func NewClassicCascade(estimatedQBER float64, seed uint64) ErrorCorrector {
	return cascade.NewClassic(estimatedQBER, seed)
}

// ---------------------------------------------------------------------
// VPN (Section 7)
// ---------------------------------------------------------------------

// VPNConfig assembles the two-site system of Fig. 2.
type VPNConfig = vpn.Config

// TunnelSpec declares one of a gateway pair's protected tunnels
// (VPNConfig.Tunnels); each carries its own selectors, cipher suite
// and SA lifetime, and Send is safe for concurrent use across them.
type TunnelSpec = vpn.TunnelSpec

// VPN is the assembled network.
type VPN = vpn.Network

// Cipher suites for tunnel policies.
const (
	SuiteAES128CTR = ipsec.SuiteAES128CTR
	Suite3DESCBC   = ipsec.Suite3DESCBC
	SuiteOTP       = ipsec.SuiteOTP
)

// SALifetime bounds a Security Association in seconds and/or bytes.
type SALifetime = ipsec.Lifetime

// IKEConfig tunes the key-agreement daemons.
type IKEConfig = ike.Config

// NewVPN assembles (but does not start) the network; call
// DistillKeys then Establish.
func NewVPN(cfg VPNConfig) (*VPN, error) { return vpn.New(cfg) }

// Well-known test addresses (the paper's 192.1.99.x testbed shape).
var (
	HostA = vpn.HostA
	HostB = vpn.HostB
)

// ---------------------------------------------------------------------
// QKD networks (Section 8)
// ---------------------------------------------------------------------

// RelayNetwork is a trusted-relay key-transport mesh.
type RelayNetwork = relay.Network

// NewRelayNetwork returns an empty mesh.
func NewRelayNetwork(seed uint64) *RelayNetwork { return relay.NewNetwork(seed) }

// NewRelayFullMesh links every node pair (N(N-1)/2 links).
func NewRelayFullMesh(seed uint64, rateBits int, names ...string) *RelayNetwork {
	return relay.FullMesh(seed, rateBits, names...)
}

// NewRelayStar links every leaf to a hub (N links).
func NewRelayStar(seed uint64, rateBits int, hub string, leaves ...string) *RelayNetwork {
	return relay.Star(seed, rateBits, hub, leaves...)
}

// OpticalMesh is an untrusted photonic-switch fabric.
type OpticalMesh = optical.Mesh

// NewOpticalMesh returns an empty fabric.
func NewOpticalMesh() *OpticalMesh { return optical.NewMesh() }
