// Benchmarks regenerating every experiment in DESIGN.md's index
// (E1-E12), one per table/figure/claim of the paper's evaluation, plus
// whole-pipeline micro-benchmarks. Run:
//
//	go test -bench=. -benchmem
//
// Each BenchmarkEx_* executes the full experiment workload per
// iteration (quick mode), so ns/op is the cost of regenerating that
// experiment; the experiment's table itself is printed by cmd/qkdexp.
package qkd

import (
	"sort"
	"sync"
	"testing"
	"time"

	"qkd/internal/experiments"
	"qkd/internal/kms"
	"qkd/internal/rng"
)

func benchExperiment(b *testing.B, run func(uint64, bool) (*experiments.Report, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := run(uint64(i)+1, true)
		if err != nil {
			b.Fatalf("%s: %v", r.ID, err)
		}
		if len(r.Rows()) == 0 {
			b.Fatalf("%s produced no output", r.ID)
		}
	}
}

func BenchmarkE1_EndToEnd(b *testing.B)       { benchExperiment(b, experiments.E1EndToEnd) }
func BenchmarkE2_RateVsDistance(b *testing.B) { benchExperiment(b, experiments.E2RateVsDistance) }
func BenchmarkE3_SiftRatio(b *testing.B)      { benchExperiment(b, experiments.E3SiftRatio) }
func BenchmarkE4_Cascade(b *testing.B)        { benchExperiment(b, experiments.E4Cascade) }
func BenchmarkE5_Defense(b *testing.B)        { benchExperiment(b, experiments.E5Defense) }
func BenchmarkE6_PrivacyAmp(b *testing.B)     { benchExperiment(b, experiments.E6PrivacyAmp) }
func BenchmarkE7_Eve(b *testing.B)            { benchExperiment(b, experiments.E7Eve) }
func BenchmarkE8_IKE(b *testing.B)            { benchExperiment(b, experiments.E8IKE) }
func BenchmarkE9_RelayMesh(b *testing.B)      { benchExperiment(b, experiments.E9RelayMesh) }
func BenchmarkE10_Switches(b *testing.B)      { benchExperiment(b, experiments.E10Switches) }
func BenchmarkE11_Auth(b *testing.B)          { benchExperiment(b, experiments.E11Auth) }
func BenchmarkE12_Transcript(b *testing.B)    { benchExperiment(b, experiments.E12Transcript) }

// Whole-pipeline micro-benchmarks through the public facade.

func fastParams() LinkParams {
	p := DefaultLinkParams()
	p.FiberKm = 0
	p.SystemLossDB = 0
	p.DetectorEff = 1
	p.DarkCountProb = 1e-5
	p.Visibility = 0.96
	return p
}

// BenchmarkPipeline_DistillPerFrame measures the full protocol pipeline
// (sift + cascade + entropy + amplification) per 10k-pulse frame.
func BenchmarkPipeline_DistillPerFrame(b *testing.B) {
	s := NewSession(fastParams(), Config{BatchBits: 4096}, 10000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.RunFrames(1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(s.Alice.Metrics().DistilledBits)/float64(b.N), "keybits/frame")
}

// BenchmarkPipeline_Authenticated is the same pipeline with
// Wegman-Carter authentication on every public-channel message.
func BenchmarkPipeline_Authenticated(b *testing.B) {
	s, err := NewAuthenticatedSession(fastParams(), Config{BatchBits: 4096}, 10000, 1, 1<<22)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.RunFrames(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVPN_Tunnel1KB measures the assembled VPN dataplane.
func BenchmarkVPN_Tunnel1KB(b *testing.B) {
	n, err := NewVPN(VPNConfig{
		Photonics: fastParams(),
		QKD:       Config{BatchBits: 2048},
		Suite:     SuiteAES128CTR,
		Seed:      1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer n.Close()
	if err := n.DistillKeys(2048, 120); err != nil {
		b.Fatal(err)
	}
	if err := n.Establish(); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Send(HostA, HostB, uint32(i), payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE13_KDS(b *testing.B)         { benchExperiment(b, experiments.E13KDS) }
func BenchmarkE14_Striping(b *testing.B)    { benchExperiment(b, experiments.E14Striping) }
func BenchmarkE15_Dataplane(b *testing.B)   { benchExperiment(b, experiments.E15Dataplane) }
func BenchmarkE16_Fabric(b *testing.B)      { benchExperiment(b, experiments.E16Fabric) }
func BenchmarkE17_ChaosSoak(b *testing.B)   { benchExperiment(b, experiments.E17ChaosSoak) }
func BenchmarkE18_FlowControl(b *testing.B) { benchExperiment(b, experiments.E18FlowControl) }

// ---------------------------------------------------------------------
// Key delivery service: concurrent withdrawal path
// ---------------------------------------------------------------------

// benchKMSWithdraw measures `consumers` goroutines hammering 1024-bit
// withdrawals against a store striped over `shards` mutexes. Each
// withdrawal is recycled (deposited back), so the store stays charged
// and the numbers isolate contention, not exhaustion. A sampled p99
// per-op latency is reported alongside ns/op.
func benchKMSWithdraw(b *testing.B, consumers, shards int) {
	store := kms.NewStore(shards)
	gen := rng.NewSplitMix64(1)
	const withdrawBits = 1024
	// Charge 4 in-flight withdrawals per consumer so transient
	// exhaustion retries stay rare.
	for i := 0; i < 4*consumers; i++ {
		store.Deposit(gen.Bits(withdrawBits))
	}
	lat := make([][]int64, consumers)
	var wg sync.WaitGroup
	b.SetBytes(withdrawBits / 8)
	b.ResetTimer()
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			n := b.N / consumers
			if c < b.N%consumers {
				n++
			}
			for i := 0; i < n; i++ {
				sampled := i%16 == 0
				var t0 time.Time
				if sampled {
					t0 = time.Now()
				}
				bits, err := store.TryConsume(withdrawBits)
				if err != nil {
					i-- // transient: another consumer holds the bits
					continue
				}
				if sampled {
					// Sample before the recycling Deposit so the p99
					// tracks withdrawal cost alone.
					lat[c] = append(lat[c], int64(time.Since(t0)))
				}
				store.Deposit(bits)
			}
		}(c)
	}
	wg.Wait()
	b.StopTimer()
	var all []int64
	for _, l := range lat {
		all = append(all, l...)
	}
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		b.ReportMetric(float64(all[len(all)*99/100]), "p99-ns")
	}
}

// BenchmarkKMS_Withdraw* sweep the consumer count on a 16-way store;
// the Serial variant pins 1024 consumers to a single stripe — the old
// one-mutex reservoir shape — so the sharding win is measured, not
// assumed.
func BenchmarkKMS_Withdraw1(b *testing.B)    { benchKMSWithdraw(b, 1, 16) }
func BenchmarkKMS_Withdraw64(b *testing.B)   { benchKMSWithdraw(b, 64, 16) }
func BenchmarkKMS_Withdraw1024(b *testing.B) { benchKMSWithdraw(b, 1024, 16) }
func BenchmarkKMS_Withdraw1024Serial(b *testing.B) {
	benchKMSWithdraw(b, 1024, 1)
}
